//! Symbolic execution to a fixed point (§2, Fig. 2).
//!
//! A worklist iterates over CFG blocks. A block's input RSRSG is the
//! accumulated union of its incoming edge contributions — each predecessor's
//! output refined by the branch condition of that edge and stripped of the
//! TOUCH marks of any loops the edge exits. Accumulation makes the iteration
//! monotone in a finite lattice (node properties range over finite sets and
//! COMPRESS keeps member graphs pairwise-incompatible), so the fixed point
//! is reached; a configurable iteration budget guards the implementation
//! anyway.
//!
//! The engine stores the RSRSG *after every statement* — the paper's
//! "RSRSG associated with each sentence" — plus timing and structural-byte
//! accounting for the Table 1 harness. Setting [`EngineConfig::parallel`]
//! fans the per-graph statement transfers of large RSRSGs out across
//! threads (std scoped threads) with dynamic work claiming; results are
//! re-unioned in canonical order, so parallel and sequential runs produce
//! identical RSRSGs. All paths — sequential, fan-out workers, and the
//! progressive driver when it reuses one [`ShapeCtx`] — share the run-wide
//! interner, subsumption memo, and transfer memo of
//! [`psa_rsg::intern::SharedTables`].
//!
//! The fixpoint itself is incremental (see DESIGN.md §6): per-graph
//! transfers are memoized by `(config-epoch, stmt, CanonId)`, statements
//! whose input only grew by appends re-transfer just the delta, and all
//! per-point state (`after_stmt`/`block_in`/`block_out`) lives as vectors
//! of interned [`CanonId`]s during the run — the per-statement deep
//! `clone()` of the whole RSRSG is gone, and structural-byte accounting is
//! maintained incrementally instead of rescanned every iteration.

use crate::rsrsg::Rsrsg;
use crate::semantics::{
    clear_touch, enter_touch, refine_by_cond, transfer_one_cached, transfer_rsrsg, transfer_scalar,
    GraphAction, TransferCtx,
};
use crate::stats::{AnalysisStats, Budget};
use psa_ir::{BlockId, FuncIr, Stmt, StmtId, Terminator};
use psa_rsg::intern::{CancelCause, CanonEntry, CanonId};
use psa_rsg::trace::TraceKind;
use psa_rsg::{Level, Rsg, ShapeCtx};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Compilation level (progressive analysis stage).
    pub level: Level,
    /// Resource budget.
    pub budget: Budget,
    /// Process the graphs of large RSRSGs on multiple threads.
    pub parallel: bool,
    /// Minimum graphs in an RSRSG before parallel fan-out pays off.
    pub parallel_threshold: usize,
    /// Worker-thread count for parallel fan-out. `None` (the default) uses
    /// the machine's available parallelism; `Some(n)` pins exactly `n`
    /// workers — the knob behind the bench-report `--threads` scaling
    /// sweeps. Capped at the fan-out width either way.
    pub parallel_threads: Option<usize>,
    /// Soft cap on graphs per RSRSG before the widening join kicks in
    /// (force-joining graphs with equal widening signatures). Keeps the
    /// analysis practicable on codes whose control flow fragments the
    /// RSRSG; see [`Rsrsg::widen`].
    pub widen_cap: usize,
    /// Lower provable sharing flags after every statement (§4.2). Disable
    /// only to reproduce the paper's "stale sharing blocks pruning"
    /// behaviour in the ablation benches.
    pub sharing_relaxation: bool,
    /// Ablation: stores mark their targets SHARED/SHSEL unconditionally
    /// (the paper's L1-imprecision emulation; see
    /// [`crate::semantics::TransferCtx::pessimistic_sharing`]).
    pub pessimistic_sharing: bool,
    /// Route every PRUNE through the whole-graph rescan reference
    /// implementation instead of the seeded worklist. Output-identical by
    /// construction; kept as the differential-testing baseline (see
    /// [`psa_rsg::prune::prune_reference`]).
    pub reference_prune: bool,
    /// Memoize subsumption queries by interned canonical id and pre-filter
    /// them with structural fingerprints (see [`psa_rsg::intern`]). Disable
    /// to force every query through the raw backtracking search — the
    /// reference behaviour the differential regression suite compares
    /// against.
    pub subsume_cache: bool,
    /// Memoize per-graph statement transfers by `(config-epoch, stmt,
    /// CanonId)` in the run-wide [`psa_rsg::intern::TransferCache`]. Any
    /// graph already transferred under a statement — in an earlier worklist
    /// iteration, on another fan-out thread, or in a previous run over the
    /// same function and config on a shared [`ShapeCtx`] — is answered by a
    /// lookup. Disable for the reference recompute-everything behaviour the
    /// differential suite compares against.
    pub transfer_cache: bool,
    /// Delta-driven statement re-transfer: when a statement's input set has
    /// only *grown by appends* since its last transfer (old CanonId vector
    /// is a prefix of the new one), continue the insert fold from the cached
    /// pre-widening output over the new suffix instead of re-transferring
    /// every graph; an unchanged input replays the cached post-widening
    /// output outright. Any other change — members removed, joined, or
    /// reordered by widening or TOUCH edge adjustments — falls back to a
    /// full re-transfer. Disable for the reference behaviour.
    pub delta_transfer: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            level: Level::L1,
            budget: Budget::default(),
            parallel: false,
            parallel_threshold: 8,
            parallel_threads: None,
            widen_cap: 12,
            sharing_relaxation: true,
            pessimistic_sharing: false,
            reference_prune: false,
            subsume_cache: true,
            transfer_cache: true,
            delta_transfer: true,
        }
    }
}

impl EngineConfig {
    /// Config for a specific level with defaults otherwise.
    pub fn at_level(level: Level) -> EngineConfig {
        EngineConfig {
            level,
            ..Default::default()
        }
    }
}

/// Which budget cap tripped — carried both by the hard-cap error
/// ([`AnalysisError::BudgetExceeded`]) and by the degradation marker
/// ([`AnalysisResult::stopped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Peak structural bytes exceeded [`Budget::max_bytes`] (the paper's
    /// "compiler runs out of memory").
    Bytes {
        /// Peak bytes when the budget tripped.
        peak_bytes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A statement's RSRSG exceeded the hard graph-count cap
    /// [`Budget::max_graphs`].
    Graphs {
        /// How many graphs accumulated.
        graphs: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The iteration budget [`Budget::max_iterations`] was exhausted
    /// before a fixed point.
    Iterations {
        /// Iterations executed.
        iterations: usize,
    },
    /// A statement's RSRSG reached the soft cap [`Budget::max_rsgs`].
    Rsgs {
        /// How many graphs accumulated.
        graphs: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The shared interner/memo tables grew past
    /// [`Budget::max_table_bytes`].
    TableBytes {
        /// Approximate table bytes when the cap tripped.
        bytes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock [`Budget::deadline`] passed.
    Deadline {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// Interprocedural summary computation gave up soundly at a call site;
    /// see [`InterprocReason`]. Like the other soft stops, everything from
    /// the stopping call onward is degraded and clients claim nothing.
    Interproc {
        /// What stopped the summary computation.
        reason: InterprocReason,
    },
}

/// Why a recursive-call summary computation stopped. Every case is a
/// *sound* refusal: the call's output is left at the caller's input, the
/// statement is marked degraded, and the run records
/// [`BudgetKind::Interproc`] so downstream clients clamp to may-fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterprocReason {
    /// The nested callee analysis itself degraded or stopped on a budget;
    /// its exit set is an under-approximation the caller must not consume.
    NestedStop,
    /// The summary fixpoint did not converge within the round cap.
    SummaryRounds,
    /// One function accumulated more distinct entry graphs than the
    /// per-(body, epoch) cap admits.
    SummaryEntries,
    /// Summary computations nested deeper than the recursion cap.
    Depth,
    /// A call site exposed a cutpoint the localization cannot name: a cell
    /// inside the region passed to the callee is referenced from the
    /// caller's frame other than through an argument target, so the exit
    /// region cannot be glued back soundly.
    Cutpoint,
}

impl std::fmt::Display for InterprocReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterprocReason::NestedStop => {
                write!(f, "nested callee analysis degraded or stopped on a budget")
            }
            InterprocReason::SummaryRounds => {
                write!(f, "summary fixpoint exceeded the iteration-round cap")
            }
            InterprocReason::SummaryEntries => {
                write!(f, "function exceeded the distinct-entry-graph cap")
            }
            InterprocReason::Depth => write!(f, "summary recursion exceeded the depth cap"),
            InterprocReason::Cutpoint => {
                write!(f, "call site has a cutpoint the localization cannot name")
            }
        }
    }
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Bytes { peak_bytes, limit } => write!(
                f,
                "out of memory: peak {peak_bytes} bytes exceeds budget {limit} bytes"
            ),
            BudgetKind::Graphs { graphs, limit } => {
                write!(f, "RSRSG grew to {graphs} graphs (limit {limit})")
            }
            BudgetKind::Iterations { iterations } => {
                write!(f, "no fixed point after {iterations} iterations")
            }
            BudgetKind::Rsgs { graphs, limit } => {
                write!(f, "RSRSG reached {graphs} graphs (soft cap {limit})")
            }
            BudgetKind::TableBytes { bytes, limit } => {
                write!(f, "shared tables reached ~{bytes} bytes (cap {limit})")
            }
            BudgetKind::Deadline { limit_ms } => {
                write!(f, "wall-clock deadline of {limit_ms} ms passed")
            }
            BudgetKind::Interproc { reason } => {
                write!(f, "interprocedural analysis stopped: {reason}")
            }
        }
    }
}

/// Why an analysis run failed. Soft degradation caps never produce this —
/// they return `Ok` with [`AnalysisResult::stopped`] set; see [`Budget`].
/// Frontend (parse/type) failures live in [`crate::api::Error::Frontend`],
/// upstream of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A hard budget cap tripped.
    BudgetExceeded {
        /// Which cap, with its observed and configured values.
        which: BudgetKind,
        /// The statement being transferred, when the cap is per-statement.
        at_stmt: Option<StmtId>,
    },
    /// The engine panicked; the panic was contained at the `run()` boundary
    /// and converted (shared tables recover from poisoning, so a later run
    /// on the same [`ShapeCtx`] is still possible).
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A shared-table snapshot could not be saved or loaded
    /// (`--save-cache` / `--load-cache`, daemon `save_cache`/`load_cache`).
    /// Wraps [`psa_rsg::snapshot::SnapshotError`], which distinguishes I/O
    /// problems, corruption/truncation, and format-version mismatches.
    Snapshot {
        /// The rendered [`psa_rsg::snapshot::SnapshotError`].
        message: String,
    },
}

impl AnalysisError {
    /// Constructor for hard-cap errors.
    fn budget(which: BudgetKind, at_stmt: Option<StmtId>) -> AnalysisError {
        AnalysisError::BudgetExceeded { which, at_stmt }
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::BudgetExceeded {
                which,
                at_stmt: Some(s),
            } => {
                write!(f, "budget exceeded at {s}: {which}")
            }
            AnalysisError::BudgetExceeded {
                which,
                at_stmt: None,
            } => {
                write!(f, "budget exceeded: {which}")
            }
            AnalysisError::Internal { message } => {
                write!(f, "internal analysis error: {message}")
            }
            AnalysisError::Snapshot { message } => {
                write!(f, "{message}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<psa_rsg::snapshot::SnapshotError> for AnalysisError {
    fn from(e: psa_rsg::snapshot::SnapshotError) -> Self {
        AnalysisError::Snapshot {
            message: e.to_string(),
        }
    }
}

/// The product of a run: per-statement RSRSGs plus statistics. A run under
/// degradation caps may be **partial**: [`AnalysisResult::stopped`] records
/// the cap that cancelled remaining work, and
/// [`AnalysisResult::degraded`] marks the statements whose RSRSGs were
/// force-summarized (sound but coarser) or left stale by the cancellation.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Level the analysis ran at.
    pub level: Level,
    /// RSRSG after each statement (indexed by [`StmtId`]).
    pub after_stmt: Vec<Rsrsg>,
    /// RSRSG at entry of each block (indexed by [`BlockId`]).
    pub block_in: Vec<Rsrsg>,
    /// RSRSG at the return point (union over `Return` block outputs).
    pub exit: Rsrsg,
    /// Statistics of the run.
    pub stats: AnalysisStats,
    /// Per-statement degradation marks (indexed by [`StmtId`], sticky):
    /// `true` when the statement's RSRSG was force-summarized under
    /// [`Budget::max_nodes`], or when a cancellation left the statement's
    /// state possibly stale (its block was still pending re-transfer).
    pub degraded: Vec<bool>,
    /// `Some` when a degradation cap (RSG count, table bytes, deadline)
    /// cancelled remaining work: the fixed point was *not* reached and the
    /// per-point RSRSGs are a partial under-approximation of it. `None`
    /// means the fixed point completed (forced summarization under the node
    /// cap still completes — check [`AnalysisResult::degraded`]).
    pub stopped: Option<BudgetKind>,
}

impl AnalysisResult {
    /// RSRSG after statement `s`.
    pub fn at(&self, s: StmtId) -> &Rsrsg {
        &self.after_stmt[s.0 as usize]
    }

    /// The RSRSG *entering* statement `pos` of block `bi`: the block input
    /// for the first statement, the predecessor statement's fixed-point
    /// output otherwise. Clients must reconstruct inputs through this (or
    /// equivalently through [`AnalysisResult::at`] of the predecessor)
    /// rather than threading a running clone through the block — a memo
    /// replay may store a member order different from the one a clone
    /// accumulated, and per-graph set operations are order-sensitive.
    pub fn input_at(&self, ir: &psa_ir::FuncIr, bi: psa_ir::BlockId, pos: usize) -> &Rsrsg {
        let block = ir.block(bi);
        if pos == 0 {
            &self.block_in[bi.0 as usize]
        } else {
            self.at(block.stmts[pos - 1])
        }
    }

    /// True when the fixed point completed (no cancellation; forced
    /// summarization may still have coarsened statements).
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none()
    }

    /// True when any statement carries a degradation mark.
    pub fn any_degraded(&self) -> bool {
        self.degraded.iter().any(|&d| d)
    }

    /// The statements marked degraded.
    pub fn degraded_stmts(&self) -> impl Iterator<Item = StmtId> + '_ {
        self.degraded
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| StmtId(i as u32))
    }
}

/// The symbolic-execution engine for one function.
pub struct Engine<'a> {
    ir: &'a FuncIr,
    ctx: ShapeCtx,
    config: EngineConfig,
    /// The callee table for resolving [`Stmt::Call`] indices. The root
    /// engine's own table; nested summary engines inherit the root's
    /// (callee bodies carry empty tables of their own).
    callees: &'a [psa_ir::CalleeFunc],
    /// Override for the entry RSRSG: nested summary runs start from the
    /// prepared call-entry graph instead of the all-NULL entry.
    entry_state: Option<Rsrsg>,
    /// Summary-computation nesting depth (0 for a root run).
    call_depth: u32,
    /// Set by the call transfer when an interprocedural summary had to
    /// give up; `run_inner` converts it into a soft stop exactly like the
    /// RSG/deadline caps. A `Cell` because the transfer path only holds
    /// `&self` (call transfers never run on fan-out workers).
    interproc_stop: std::cell::Cell<Option<InterprocReason>>,
}

impl<'a> Engine<'a> {
    /// Create an engine over a lowered function with a fresh universe (and
    /// fresh interner/memo tables, so op counters start at zero).
    pub fn new(ir: &'a FuncIr, config: EngineConfig) -> Engine<'a> {
        let ctx = ShapeCtx::from_ir(ir);
        Engine::with_shape_ctx(ir, config, ctx)
    }

    /// Create an engine reusing an existing universe. Because the
    /// [`ShapeCtx`] carries the shared interner and subsumption memo, this
    /// is how the progressive driver makes L2/L3 re-analysis hit the tables
    /// populated at L1.
    pub fn with_shape_ctx(ir: &'a FuncIr, config: EngineConfig, ctx: ShapeCtx) -> Engine<'a> {
        let ctx = if config.subsume_cache || !ctx.tables.cache_enabled() {
            ctx
        } else {
            ctx.with_tables(std::sync::Arc::new(
                psa_rsg::intern::SharedTables::without_cache(),
            ))
        };
        Engine {
            callees: &ir.callees,
            ir,
            ctx,
            config,
            entry_state: None,
            call_depth: 0,
            interproc_stop: std::cell::Cell::new(None),
        }
    }

    /// A nested engine for one summary computation: runs a callee body over
    /// the caller's universe and shared tables, starting from a prepared
    /// call-entry RSRSG. Always sequential (the outer run owns any
    /// parallelism) and bounded by whatever wall-clock remains of the outer
    /// deadline (the caller fixes up `config.budget.deadline`).
    pub(crate) fn nested(
        ir: &'a FuncIr,
        callees: &'a [psa_ir::CalleeFunc],
        config: EngineConfig,
        ctx: ShapeCtx,
        entry: Rsrsg,
        call_depth: u32,
    ) -> Engine<'a> {
        Engine {
            ir,
            ctx,
            config,
            callees,
            entry_state: Some(entry),
            call_depth,
            interproc_stop: std::cell::Cell::new(None),
        }
    }

    /// The analysis universe.
    pub fn ctx(&self) -> &ShapeCtx {
        &self.ctx
    }

    /// The engine configuration.
    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The callee table [`Stmt::Call`] indices resolve against.
    pub(crate) fn callees(&self) -> &'a [psa_ir::CalleeFunc] {
        self.callees
    }

    /// Current summary nesting depth.
    pub(crate) fn call_depth(&self) -> u32 {
        self.call_depth
    }

    /// Record an interprocedural stop; picked up by the statement loop.
    pub(crate) fn set_interproc_stop(&self, reason: InterprocReason) {
        if self.interproc_stop.get().is_none() {
            self.interproc_stop.set(Some(reason));
        }
    }

    /// The epoch key of this run's transfer-relevant configuration: the
    /// analysis universe ([`ShapeCtx::universe_key`]) plus every config knob
    /// [`crate::semantics::transfer_one`] consults. Runs sharing a
    /// [`ShapeCtx`] only share memoized transfers when their keys agree — a
    /// progressive driver re-running at the same level hits, L1 results never
    /// leak into L3, and incompatible universes never alias.
    ///
    /// Deliberately *not* a function-body hash: the per-statement memo key is
    /// `(epoch, stmt slot)`, where the slot is minted from the statement's
    /// *content* ([`Engine::stmt_content_key`]). Two functions — or two
    /// versions of one function, across requests or across a snapshot
    /// restore — that execute an identical statement over an identical
    /// universe therefore share its memoized transfers, which is what makes
    /// warm-start and incremental re-analysis pay off.
    pub(crate) fn config_key(&self) -> u64 {
        let repr = format!(
            "{:x}|{}|{}|{}",
            self.ctx.universe_key(),
            self.config.level,
            self.config.sharing_relaxation,
            self.config.pessimistic_sharing
        );
        // FNV-1a, deterministic across processes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// The content key of one statement: the statement itself plus the
    /// active in-loop pvars that TOUCH tracking consults (empty below L3,
    /// matching what [`crate::semantics::transfer_one`] actually sees).
    /// Source positions are deliberately excluded — warnings are
    /// name-based, so a statement that merely moved lines keeps its
    /// memoized transfers. The engine resolves this key to a dense slot id
    /// via [`SharedTables::stmt_slot_for`]; the slot replaces the raw
    /// statement index in the transfer-memo key so identical statements
    /// alias across function versions.
    fn stmt_content_key(&self, sid: StmtId) -> u64 {
        let info = self.ir.stmt(sid);
        let active = if self.config.level.use_touch() {
            self.ir.active_ipvars(&info.loops)
        } else {
            Vec::new()
        };
        let repr = format!("{:?}|{active:?}", info.stmt);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Run to the fixed point (or to a budget cap; see [`Budget`]).
    ///
    /// Panic-free: any panic on the analysis path — including one raised on
    /// a fan-out worker thread — is contained here and converted to
    /// [`AnalysisError::Internal`]. The shared tables recover from mutex
    /// poisoning ([`psa_rsg::lock_recover`]) and the cancellation token is
    /// reset on entry, so a failed run never poisons a later run on the
    /// same [`ShapeCtx`].
    pub fn run(&self) -> Result<AnalysisResult, AnalysisError> {
        self.ctx.tables.cancel.reset();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner())) {
            Ok(r) => r,
            Err(payload) => {
                // A worker panic may have set the token to stop its peers;
                // clear it so the tables stay usable.
                self.ctx.tables.cancel.reset();
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(AnalysisError::Internal { message })
            }
        }
    }

    pub(crate) fn run_inner(&self) -> Result<AnalysisResult, AnalysisError> {
        let start = Instant::now();
        let ops_start = self.ctx.tables.snapshot();
        let level = self.config.level;
        let nblocks = self.ir.blocks.len();
        let nstmts = self.ir.stmts.len();
        let epoch = self.ctx.tables.epoch_for(self.config_key());
        // Per-statement dense memo slots, minted from statement content so
        // identical statements share transfers across function versions.
        let slots: Vec<u32> = (0..nstmts)
            .map(|i| {
                self.ctx
                    .tables
                    .stmt_slot_for(self.stmt_content_key(StmtId(i as u32)))
            })
            .collect();
        let mut stats = AnalysisStats {
            num_stmts: nstmts,
            ..AnalysisStats::default()
        };

        // Degradation state. With no degradation cap set (the default),
        // `deadline` is `None`, the cancellation token is never raised, and
        // every check below is a no-op — the run is bit-identical to one
        // without the budget layer.
        let budget = self.config.budget;
        let deadline: Option<(Instant, u64)> =
            budget.deadline.map(|d| (start + d, d.as_millis() as u64));
        let cancel = &self.ctx.tables.cancel;
        let tracer = &self.ctx.tables.tracer;
        let mut degraded = vec![false; nstmts];
        let mut stopped: Option<BudgetKind> = None;

        // Engine state is interned: per-point vectors of canonical ids
        // instead of deep-cloned RSRSGs. Graphs are materialized from the
        // interner only where the transfer actually needs them, and once
        // more at the end for the public `AnalysisResult`.
        let mut block_in_ids: Vec<Vec<CanonId>> = vec![Vec::new(); nblocks];
        let mut block_out_ids: Vec<Vec<CanonId>> = vec![Vec::new(); nblocks];
        let mut after_ids: Vec<Vec<CanonId>> = vec![Vec::new(); nstmts];
        let mut exit = Rsrsg::new();

        // Incremental structural-byte accounting: each slot is charged the
        // approx_bytes of the set it currently stores and three running
        // totals replace the former O(blocks + stmts) rescan per iteration.
        // Charges change exactly when a slot is overwritten, so the sampled
        // values are identical to the old full sums.
        let mut in_bytes = vec![0usize; nblocks];
        let mut out_bytes = vec![0usize; nblocks];
        let mut stmt_bytes = vec![0usize; nstmts];
        let mut live_in = 0usize;
        let mut live_out = 0usize;
        let mut live_stmt = 0usize;
        fn charge(slot: &mut usize, total: &mut usize, new: usize) {
            *total = *total - *slot + new;
            *slot = new;
        }

        // Per-statement delta cache: input ids, pre-widening output ids,
        // post-widening output ids of the last transfer of each statement.
        let mut deltas: Vec<Option<StmtDelta>> = (0..nstmts).map(|_| None).collect();

        let entry_set = match &self.entry_state {
            Some(prepared) => prepared.clone(),
            None => Rsrsg::entry(self.ir.num_pvars(), &self.ctx),
        };
        let ei = self.ir.entry.0 as usize;
        charge(&mut in_bytes[ei], &mut live_in, entry_set.approx_bytes());
        block_in_ids[ei] = entry_set.canon_ids();

        // Process blocks in id order (lowering emits them roughly in
        // reverse post-order), which reaches loop fixed points with far
        // fewer re-transfers than LIFO.
        let mut worklist: std::collections::BTreeSet<BlockId> = std::collections::BTreeSet::new();
        worklist.insert(self.ir.entry);
        let mut on_list = vec![false; nblocks];
        on_list[ei] = true;

        let mut iterations = 0usize;
        while let Some(b) = worklist.pop_first() {
            let bi = b.0 as usize;
            on_list[bi] = false;
            iterations += 1;
            tracer.instant(TraceKind::WorklistIter, b.0 as u64, iterations as u64);
            if iterations > budget.max_iterations {
                return Err(AnalysisError::budget(
                    BudgetKind::Iterations { iterations },
                    None,
                ));
            }

            // Degradation checks at the block boundary: table bytes and the
            // wall-clock deadline (also polled per statement below).
            if stopped.is_none() {
                if let Some(limit) = budget.max_table_bytes {
                    let bytes = self.ctx.tables.approx_table_bytes();
                    if bytes > limit {
                        stopped = Some(BudgetKind::TableBytes { bytes, limit });
                    }
                }
            }
            if stopped.is_none() {
                if let Some((dl, limit_ms)) = deadline {
                    if Instant::now() >= dl {
                        stopped = Some(BudgetKind::Deadline { limit_ms });
                    }
                }
            }
            if let Some(which) = &stopped {
                self.raise_cancel(which);
                worklist.insert(b); // this block's statements are stale too
                break;
            }

            // Transfer the block.
            let mut cur = Rsrsg::from_interned(&block_in_ids[bi], &self.ctx);
            let block = self.ir.block(b);
            for &sid in &block.stmts {
                let si = sid.0 as usize;
                let span_t0 = tracer.enabled().then(Instant::now);
                let in_width = cur.len();
                cur = self.transfer_stmt_incremental(
                    cur,
                    sid,
                    epoch,
                    slots[si],
                    deadline.map(|(dl, _)| dl),
                    &mut deltas[si],
                    &mut stats,
                );
                if let Some(t0) = span_t0 {
                    tracer.span_since(TraceKind::StmtTransfer, t0, sid.0 as u64, in_width as u64);
                }
                // Node cap: forced summarization keeps the fixed point
                // going with sound-but-coarser graphs; mark the statement.
                if let Some(cap) = budget.max_nodes {
                    if cur.force_summarize(&self.ctx, level, cap) {
                        degraded[si] = true;
                        tracer.instant(TraceKind::ForceCompress, sid.0 as u64, 0);
                    }
                }
                if cur.len() > budget.max_graphs {
                    return Err(AnalysisError::budget(
                        BudgetKind::Graphs {
                            graphs: cur.len(),
                            limit: budget.max_graphs,
                        },
                        Some(sid),
                    ));
                }
                // An interprocedural summary gave up at this statement:
                // soft-stop exactly like the degradation caps (the call's
                // output passed the input through, which is only sound
                // under the degraded/stopped discipline).
                if stopped.is_none() {
                    if let Some(reason) = self.interproc_stop.take() {
                        stopped = Some(BudgetKind::Interproc { reason });
                    }
                }
                // Soft caps: record the partial state, cancel the rest.
                if stopped.is_none() {
                    if let Some(limit) = budget.max_rsgs {
                        if cur.len() > limit {
                            stopped = Some(BudgetKind::Rsgs {
                                graphs: cur.len(),
                                limit,
                            });
                        }
                    }
                }
                if stopped.is_none() {
                    // The fold loops and fan-out workers raise the token
                    // when a cap trips mid-statement; recover the recorded
                    // cause instead of blaming whichever cap is polled
                    // first (the deadline, historically).
                    match cancel.cause() {
                        Some(CancelCause::TableBytes) => {
                            stopped = Some(BudgetKind::TableBytes {
                                bytes: self.ctx.tables.approx_table_bytes(),
                                limit: budget.max_table_bytes.unwrap_or(0),
                            });
                        }
                        Some(CancelCause::Rsgs) => {
                            stopped = Some(BudgetKind::Rsgs {
                                graphs: cur.len(),
                                limit: budget.max_rsgs.unwrap_or(0),
                            });
                        }
                        Some(CancelCause::Deadline) => {
                            if let Some((_, limit_ms)) = deadline {
                                stopped = Some(BudgetKind::Deadline { limit_ms });
                            }
                        }
                        Some(CancelCause::Interproc) => {
                            stopped = Some(BudgetKind::Interproc {
                                reason: self
                                    .interproc_stop
                                    .take()
                                    .unwrap_or(InterprocReason::NestedStop),
                            });
                        }
                        Some(CancelCause::External) | None => {}
                    }
                }
                if stopped.is_none() {
                    if let Some((dl, limit_ms)) = deadline {
                        if Instant::now() >= dl {
                            stopped = Some(BudgetKind::Deadline { limit_ms });
                        }
                    }
                }
                stats.max_graphs_per_stmt = stats.max_graphs_per_stmt.max(cur.len());
                for g in cur.iter() {
                    stats.max_nodes_per_graph = stats.max_nodes_per_graph.max(g.num_nodes());
                }
                charge(&mut stmt_bytes[si], &mut live_stmt, cur.approx_bytes());
                after_ids[si] = cur.canon_ids();
                if let Some(which) = &stopped {
                    degraded[si] = true;
                    self.raise_cancel(which);
                    break;
                }
            }
            charge(&mut out_bytes[bi], &mut live_out, cur.approx_bytes());
            block_out_ids[bi] = cur.canon_ids();

            // Memory accounting (peak of all live state), sampled at the
            // same program point as the former rescan.
            let live = live_in + live_out + live_stmt;
            stats.peak_bytes = stats.peak_bytes.max(live);
            if let Some(limit) = budget.max_bytes {
                if live > limit {
                    return Err(AnalysisError::budget(
                        BudgetKind::Bytes {
                            peak_bytes: live,
                            limit,
                        },
                        None,
                    ));
                }
            }
            if stopped.is_some() {
                worklist.insert(b); // statements past the stop point are stale
                break;
            }

            // Propagate along edges.
            let contributions: Vec<(BlockId, Rsrsg)> = match block.term {
                Terminator::Goto(t) => vec![(t, cur)],
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let t = refine_by_cond(&cur, &cond, true, &self.ctx, level);
                    let f = refine_by_cond(&cur, &cond, false, &self.ctx, level);
                    vec![(then_bb, t), (else_bb, f)]
                }
                Terminator::Return => {
                    exit.union_with(&cur, &self.ctx, level);
                    vec![]
                }
            };
            for (succ, mut contrib) in contributions {
                // Loop-exit edges clear the exited loops' TOUCH marks.
                let exited = self.ir.exited_loops(b, succ);
                if !exited.is_empty() && level.use_touch() {
                    let ipvars = self.ir.active_ipvars(exited);
                    contrib = clear_touch(&contrib, &ipvars, &self.ctx, level);
                }
                // Loop-entry edges mark the entered loops' cursors' current
                // targets as visited.
                let entered = self.ir.entered_loops(b, succ);
                if !entered.is_empty() && level.use_touch() {
                    let ipvars = self.ir.active_ipvars(entered);
                    contrib = enter_touch(&contrib, &ipvars, &self.ctx, level);
                }
                let si = succ.0 as usize;
                let mut succ_in = Rsrsg::from_interned(&block_in_ids[si], &self.ctx);
                let mut changed = succ_in.union_with(&contrib, &self.ctx, level);
                if succ_in.len() > self.config.widen_cap {
                    let before = succ_in.signature();
                    succ_in.widen(&self.ctx, level, self.config.widen_cap);
                    changed = succ_in.signature() != before || changed;
                }
                charge(&mut in_bytes[si], &mut live_in, succ_in.approx_bytes());
                block_in_ids[si] = succ_in.canon_ids();
                if changed && !on_list[si] {
                    on_list[si] = true;
                    worklist.insert(succ);
                }
            }
        }

        if stopped.is_some() {
            // Every block still awaiting (re-)transfer has possibly-stale
            // per-statement state: mark it so the report shows exactly
            // which program points the partial result cannot vouch for.
            for b in &worklist {
                for &sid in &self.ir.block(*b).stmts {
                    degraded[sid.0 as usize] = true;
                }
            }
            cancel.reset();
        }

        stats.iterations = iterations;
        stats.final_bytes = live_stmt + live_in;
        // Materialize the public per-point RSRSGs once, from the interner.
        let after_stmt: Vec<Rsrsg> = after_ids
            .iter()
            .map(|ids| Rsrsg::from_interned(ids, &self.ctx))
            .collect();
        let block_in: Vec<Rsrsg> = block_in_ids
            .iter()
            .map(|ids| Rsrsg::from_interned(ids, &self.ctx))
            .collect();
        stats.elapsed = start.elapsed();
        stats.ops = self.ctx.tables.snapshot().delta(&ops_start);
        tracer.span_since(
            TraceKind::Run,
            start,
            crate::trace::level_ordinal(level),
            iterations as u64,
        );
        Ok(AnalysisResult {
            level,
            after_stmt,
            block_in,
            exit,
            stats,
            degraded,
            stopped,
        })
    }

    /// Raise the cancellation token with the cause matching a tripped
    /// budget cap, journaling one `Cancel` event on the first raise.
    fn raise_cancel(&self, which: &BudgetKind) {
        let cause = match which {
            BudgetKind::TableBytes { .. } => CancelCause::TableBytes,
            BudgetKind::Rsgs { .. } => CancelCause::Rsgs,
            BudgetKind::Deadline { .. } => CancelCause::Deadline,
            BudgetKind::Interproc { .. } => CancelCause::Interproc,
            _ => CancelCause::External,
        };
        if self.ctx.tables.cancel.cancel_with(cause) {
            self.ctx
                .tables
                .tracer
                .instant(TraceKind::Cancel, cause.code() as u64, 0);
        }
    }

    /// Transfer one statement over an RSRSG and apply widening, consulting
    /// the per-statement delta cache and the run-wide transfer memo.
    ///
    /// Correctness of the delta decomposition rests on the statement
    /// transfer being a *fold*: the output set is `insert` applied left to
    /// right over the per-graph transfer outputs, starting from the empty
    /// set. If the statement's previous input id vector is a strict prefix
    /// of the current one (the set only grew by appends), continuing that
    /// fold from the cached pre-widening output over the suffix is exactly
    /// the full recomputation; an identical vector replays the cached
    /// post-widening output. Anything else — widening, TOUCH edge
    /// adjustments, or joins having removed/reordered members — fails the
    /// prefix check and falls back to a full re-transfer.
    #[allow(clippy::too_many_arguments)]
    fn transfer_stmt_incremental(
        &self,
        cur: Rsrsg,
        sid: StmtId,
        epoch: u32,
        slot: u32,
        deadline: Option<Instant>,
        cache: &mut Option<StmtDelta>,
        stats: &mut AnalysisStats,
    ) -> Rsrsg {
        stats.stmt_transfers += 1;
        let level = self.config.level;
        let cap = self.config.widen_cap;
        let info = self.ir.stmt(sid);
        let action = match &info.stmt {
            // Identity: untracked scalar ops pass the set through. `free`
            // is shape-identity too — the abstraction keeps covering the
            // retained cell; the memory-safety client interprets it.
            Stmt::Scalar(_) | Stmt::ScalarStore(_, _) | Stmt::Free(_) => {
                let mut out = cur;
                out.widen(&self.ctx, level, cap);
                return out;
            }
            // Calls go through the summary machinery, bypassing the delta
            // and transfer memos: the output depends on the summary cache
            // state, not just the input ids (the summary cache *is* the
            // call-level memo). On a summary give-up the input passes
            // through and `interproc_stop` soft-stops the run.
            Stmt::Call(c) => {
                let mut out = crate::interproc::transfer_call(self, c, &cur, sid, deadline, stats);
                out.widen(&self.ctx, level, cap);
                return out;
            }
            Stmt::ScalarConst(v, k) => GraphAction::Scalar(*v, Some(*k)),
            Stmt::ScalarHavoc(v, _) => GraphAction::Scalar(*v, None),
            Stmt::Ptr(p) => GraphAction::Ptr(p),
        };
        let active = if level.use_touch() {
            self.ir.active_ipvars(&info.loops)
        } else {
            Vec::new()
        };
        let tcx = TransferCtx {
            ctx: &self.ctx,
            level,
            active_ipvars: &active,
            sharing_relaxation: self.config.sharing_relaxation,
            pessimistic_sharing: self.config.pessimistic_sharing,
            reference_prune: self.config.reference_prune,
            deadline,
            table_bytes_limit: self.config.budget.max_table_bytes,
            stmt: sid.0,
        };

        // Reference path: both incremental features off reproduces the
        // recompute-everything pipeline the differential suite compares
        // against.
        if !self.config.transfer_cache && !self.config.delta_transfer {
            let mut out = match action {
                GraphAction::Ptr(p) => {
                    if self.config.parallel && cur.len() >= self.parallel_threshold() {
                        self.transfer_parallel(&cur, p, &tcx, stats)
                    } else {
                        transfer_rsrsg(&cur, p, &tcx, stats)
                    }
                }
                GraphAction::Scalar(v, k) => transfer_scalar(&cur, v, k, &self.ctx, level),
            };
            out.widen(&self.ctx, level, cap);
            return out;
        }

        let m = &self.ctx.tables.metrics;
        let in_ids = cur.canon_ids();
        if self.config.delta_transfer {
            if let Some(c) = cache.as_ref() {
                if c.input_ids == in_ids {
                    // Unchanged input: replay the post-widening output.
                    m.delta_stmt_hits.fetch_add(1, Ordering::Relaxed);
                    m.delta_graphs_reused
                        .fetch_add(in_ids.len() as u64, Ordering::Relaxed);
                    return Rsrsg::from_interned(&c.postwiden, &self.ctx);
                }
                if in_ids.len() > c.input_ids.len()
                    && in_ids[..c.input_ids.len()] == c.input_ids[..]
                {
                    // Append-only growth: continue the insert fold from the
                    // cached pre-widening output over the new suffix.
                    m.delta_stmt_extends.fetch_add(1, Ordering::Relaxed);
                    m.delta_graphs_reused
                        .fetch_add(c.input_ids.len() as u64, Ordering::Relaxed);
                    let mut out = Rsrsg::from_interned(&c.prewiden, &self.ctx);
                    let skip = c.input_ids.len();
                    self.fold_transfer(&mut out, &cur, skip, &action, slot, epoch, &tcx, stats);
                    let prewiden = out.canon_ids();
                    out.widen(&self.ctx, level, cap);
                    *cache = Some(StmtDelta {
                        input_ids: in_ids,
                        prewiden,
                        postwiden: out.canon_ids(),
                    });
                    return out;
                }
            }
            m.delta_stmt_fulls.fetch_add(1, Ordering::Relaxed);
        }
        let mut out = Rsrsg::new();
        self.fold_transfer(&mut out, &cur, 0, &action, slot, epoch, &tcx, stats);
        let prewiden = out.canon_ids();
        out.widen(&self.ctx, level, cap);
        if self.config.delta_transfer {
            *cache = Some(StmtDelta {
                input_ids: in_ids,
                prewiden,
                postwiden: out.canon_ids(),
            });
        }
        out
    }

    /// Transfer `input.graphs()[skip..]` through the (possibly memoized)
    /// per-graph transfer and fold the compressed, interned outputs into
    /// `out` in input order. Fans out across scoped threads with dynamic
    /// work claiming when the slice is large enough and
    /// [`EngineConfig::parallel`] is set.
    #[allow(clippy::too_many_arguments)]
    fn fold_transfer(
        &self,
        out: &mut Rsrsg,
        input: &Rsrsg,
        skip: usize,
        action: &GraphAction<'_>,
        slot: u32,
        epoch: u32,
        tcx: &TransferCtx<'_>,
        stats: &mut AnalysisStats,
    ) {
        let graphs = &input.graphs()[skip..];
        let entries = &input.canon_entries()[skip..];
        let use_memo = self.config.transfer_cache;
        self.ctx
            .tables
            .metrics
            .delta_graphs_transferred
            .fetch_add(graphs.len() as u64, Ordering::Relaxed);
        if self.config.parallel && graphs.len() >= self.parallel_threshold() {
            // Dynamic work claiming: a shared atomic index hands one graph
            // at a time to whichever worker is free, so one pathological
            // graph no longer serializes a whole static chunk. Results are
            // merged in input order, keeping the fold deterministic.
            let nthreads = self.fanout_threads(graphs.len());
            let next = AtomicUsize::new(0);
            let mut partials: Vec<TransferPartial> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..nthreads {
                    let next = &next;
                    // Workers share `ctx` by reference, and through it
                    // the run-wide interner/memo tables (all `Sync`).
                    let tctx = TransferCtx {
                        ctx: tcx.ctx,
                        level: tcx.level,
                        active_ipvars: tcx.active_ipvars,
                        sharing_relaxation: tcx.sharing_relaxation,
                        pessimistic_sharing: tcx.pessimistic_sharing,
                        reference_prune: tcx.reference_prune,
                        deadline: tcx.deadline,
                        table_bytes_limit: tcx.table_bytes_limit,
                        stmt: tcx.stmt,
                    };
                    handles.push(scope.spawn(move || {
                        let mut claimed = Vec::new();
                        loop {
                            // Honor cooperative cancellation between claims:
                            // a tripped budget or a panicked peer stops the
                            // fan-out without abandoning claimed results.
                            if tctx.should_stop() {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= graphs.len() {
                                break;
                            }
                            let mut local = AnalysisStats::default();
                            let outs = transfer_one_cached(
                                &graphs[i],
                                &entries[i],
                                action,
                                slot,
                                epoch,
                                use_memo,
                                &tctx,
                                &mut local,
                            );
                            claimed.push((i, outs, local));
                        }
                        claimed
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(claimed) => claimed,
                        Err(payload) => {
                            // Stop the remaining workers, then re-raise so
                            // the catch_unwind at the `run()` boundary turns
                            // this into `AnalysisError::Internal`.
                            tcx.ctx.tables.cancel.cancel();
                            std::panic::resume_unwind(payload)
                        }
                    })
                    .collect()
            });
            partials.sort_by_key(|(i, _, _)| *i);
            for (_, outs, local) in partials {
                for w in local.warnings {
                    stats.warn(w);
                }
                stats.revisits.extend(local.revisits);
                for (g, e) in outs {
                    out.insert_compressed(g, e, &self.ctx, tcx.level);
                }
            }
        } else {
            for (g, e) in graphs.iter().zip(entries) {
                if tcx.should_stop() {
                    break;
                }
                for (og, oe) in transfer_one_cached(g, e, action, slot, epoch, use_memo, tcx, stats)
                {
                    out.insert_compressed(og, oe, &self.ctx, tcx.level);
                }
            }
        }
    }

    fn parallel_threshold(&self) -> usize {
        self.config.parallel_threshold.max(2)
    }

    /// Worker count for a fan-out over `width` graphs: the configured
    /// override, or the machine's available parallelism, capped at the
    /// fan-out width (spawning more workers than graphs is pure overhead).
    fn fanout_threads(&self, width: usize) -> usize {
        self.config
            .parallel_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1)
            .min(width)
    }

    /// Reference fan-out (memo and delta both off): per-graph transfers
    /// across scoped threads with dynamic work claiming, raw outputs
    /// re-unioned in input order.
    fn transfer_parallel(
        &self,
        input: &Rsrsg,
        ptr: &psa_ir::PtrStmt,
        tcx: &TransferCtx<'_>,
        stats: &mut AnalysisStats,
    ) -> Rsrsg {
        use crate::semantics::transfer_one;
        let graphs = input.graphs();
        let nthreads = self.fanout_threads(graphs.len());
        let next = AtomicUsize::new(0);
        let mut partials: Vec<(usize, Vec<Rsg>, AnalysisStats)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..nthreads {
                let next = &next;
                let tctx = TransferCtx {
                    ctx: tcx.ctx,
                    level: tcx.level,
                    active_ipvars: tcx.active_ipvars,
                    sharing_relaxation: tcx.sharing_relaxation,
                    pessimistic_sharing: tcx.pessimistic_sharing,
                    reference_prune: tcx.reference_prune,
                    deadline: tcx.deadline,
                    table_bytes_limit: tcx.table_bytes_limit,
                    stmt: tcx.stmt,
                };
                handles.push(scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        if tctx.should_stop() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= graphs.len() {
                            break;
                        }
                        let mut local = AnalysisStats::default();
                        let outs = transfer_one(&graphs[i], ptr, &tctx, &mut local);
                        claimed.push((i, outs, local));
                    }
                    claimed
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(claimed) => claimed,
                    Err(payload) => {
                        tcx.ctx.tables.cancel.cancel();
                        std::panic::resume_unwind(payload)
                    }
                })
                .collect()
        });
        partials.sort_by_key(|(i, _, _)| *i);
        let mut out = Rsrsg::new();
        for (_, outs, local_stats) in partials {
            for w in local_stats.warnings {
                stats.warn(w);
            }
            stats.revisits.extend(local_stats.revisits);
            for g in outs {
                out.insert(g, tcx.ctx, tcx.level);
            }
        }
        out
    }
}

/// One worker's share of a dynamically-claimed fan-out: the claimed graph
/// index (for order-preserving merge), its transfer outputs, and the
/// thread-local stat deltas.
type TransferPartial = (usize, Vec<(Arc<Rsg>, CanonEntry)>, AnalysisStats);

/// The last transfer of one statement, for the delta worklist: the input
/// member ids it saw, and its output ids before and after widening.
#[derive(Debug, Clone)]
struct StmtDelta {
    input_ids: Vec<CanonId>,
    prewiden: Vec<CanonId>,
    postwiden: Vec<CanonId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_cfront::parse_and_type;
    use psa_ir::lower_main;

    fn analyze(src: &str, level: Level) -> (FuncIr, AnalysisResult) {
        let (p, t) = parse_and_type(src).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let engine = Engine::new(&ir, EngineConfig::at_level(level));
        let res = engine.run().unwrap();
        (ir, res)
    }

    const LIST_BUILD: &str = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *list;
            struct node *p;
            int i;
            list = NULL;
            for (i = 0; i < 10; i++) {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                list = p;
            }
            return 0;
        }
    "#;

    #[test]
    fn list_construction_reaches_fixed_point() {
        let (ir, res) = analyze(LIST_BUILD, Level::L1);
        assert!(!res.exit.is_empty());
        // At exit: either list == NULL (zero iterations) or a list shape.
        let has_null = res
            .exit
            .iter()
            .any(|g| g.pl(ir.pvar_id("list").unwrap()).is_none());
        let has_list = res
            .exit
            .iter()
            .any(|g| g.pl(ir.pvar_id("list").unwrap()).is_some());
        assert!(has_null && has_list);
        // No graph at exit marks any node shared: a list is unaliased.
        for g in res.exit.iter() {
            for n in g.node_ids() {
                assert!(!g.node(n).shared, "list nodes are never shared");
                assert!(g.node(n).shsel.is_empty());
            }
        }
    }

    #[test]
    fn list_shape_is_bounded() {
        let (_ir, res) = analyze(LIST_BUILD, Level::L1);
        // The summarized list must stay small regardless of the loop count.
        for g in res.exit.iter() {
            assert!(
                g.num_nodes() <= 4,
                "compressed list has ≤ 4 nodes, got {}",
                g.num_nodes()
            );
        }
        assert!(res.exit.len() <= 4);
    }

    #[test]
    fn traversal_after_construction() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *list;
                struct node *p;
                int i;
                list = NULL;
                for (i = 0; i < 10; i++) {
                    p = (struct node *) malloc(sizeof(struct node));
                    p->nxt = list;
                    list = p;
                }
                p = list;
                while (p != NULL) {
                    p->v = 1;
                    p = p->nxt;
                }
                return 0;
            }
        "#;
        let (ir, res) = analyze(src, Level::L1);
        // After the traversal p == NULL in every exit graph.
        let p = ir.pvar_id("p").unwrap();
        for g in res.exit.iter() {
            assert!(g.pl(p).is_none(), "loop exit condition refines p to NULL");
        }
    }

    #[test]
    fn branch_refinement_splits_null_cases() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *p;
                int c;
                p = NULL;
                if (c > 0) {
                    p = (struct node *) malloc(sizeof(struct node));
                }
                if (p != NULL) {
                    p->v = 1;
                }
                return 0;
            }
        "#;
        let (ir, res) = analyze(src, Level::L1);
        let p = ir.pvar_id("p").unwrap();
        // Exit has both p==NULL and p!=NULL graphs.
        assert!(res.exit.iter().any(|g| g.pl(p).is_none()));
        assert!(res.exit.iter().any(|g| g.pl(p).is_some()));
    }

    #[test]
    fn dll_construction_has_cyclelinks() {
        let src = r#"
            struct node { int v; struct node *nxt; struct node *prv; };
            int main() {
                struct node *list;
                struct node *p;
                int i;
                list = NULL;
                for (i = 0; i < 10; i++) {
                    p = (struct node *) malloc(sizeof(struct node));
                    p->nxt = list;
                    p->prv = NULL;
                    if (list != NULL) {
                        list->prv = p;
                    }
                    list = p;
                }
                return 0;
            }
        "#;
        let (ir, res) = analyze(src, Level::L1);
        let list = ir.pvar_id("list").unwrap();
        let nxt = ir.types.selector_id("nxt").unwrap();
        let prv = ir.types.selector_id("prv").unwrap();
        // In every exit graph where the list has ≥2 elements, the head has
        // the <nxt,prv> cycle pair.
        let mut checked = false;
        for g in res.exit.iter() {
            if let Some(h) = g.pl(list) {
                if !g.succs(h, nxt).is_empty() {
                    assert!(
                        g.node(h).cyclelinks.contains(nxt, prv),
                        "DLL head must carry <nxt,prv>"
                    );
                    checked = true;
                }
            }
        }
        assert!(checked, "expected at least one multi-element DLL graph");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let seq = Engine::new(&ir, EngineConfig::at_level(Level::L1))
            .run()
            .unwrap();
        let par = Engine::new(
            &ir,
            EngineConfig {
                level: Level::L1,
                parallel: true,
                parallel_threshold: 1,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        assert!(seq.exit.same_as(&par.exit));
        for (a, b) in seq.after_stmt.iter().zip(&par.after_stmt) {
            assert!(a.same_as(b));
        }
    }

    #[test]
    fn budget_out_of_memory_trips() {
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let cfg = EngineConfig {
            level: Level::L1,
            budget: Budget {
                max_bytes: Some(512),
                ..Budget::default()
            },
            ..Default::default()
        };
        match Engine::new(&ir, cfg).run() {
            Err(AnalysisError::BudgetExceeded {
                which: BudgetKind::Bytes { .. },
                at_stmt: None,
            }) => {}
            other => panic!("expected BudgetExceeded(Bytes), got {other:?}"),
        }
    }

    #[test]
    fn budget_graph_cap_names_statement() {
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let cfg = EngineConfig {
            level: Level::L1,
            budget: Budget {
                max_graphs: 1,
                ..Budget::default()
            },
            ..Default::default()
        };
        match Engine::new(&ir, cfg).run() {
            Err(AnalysisError::BudgetExceeded {
                which: BudgetKind::Graphs { limit: 1, .. },
                at_stmt: Some(_),
            }) => {}
            other => panic!("expected BudgetExceeded(Graphs), got {other:?}"),
        }
    }

    #[test]
    fn node_cap_degrades_but_completes() {
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let cfg = EngineConfig {
            level: Level::L2,
            budget: Budget {
                max_nodes: Some(3),
                ..Budget::default()
            },
            ..Default::default()
        };
        let res = Engine::new(&ir, cfg).run().unwrap();
        assert!(res.is_complete(), "forced summarization never cancels");
        assert!(res.any_degraded(), "a 3-node cap must coarsen the L2 list");
        assert!(!res.exit.is_empty());
        for s in &res.after_stmt {
            for g in s.iter() {
                assert!(g.num_nodes() <= 3, "statement RSGs stay under the cap");
            }
        }
    }

    #[test]
    fn zero_deadline_returns_partial_without_poisoning() {
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let cfg = EngineConfig {
            level: Level::L1,
            budget: Budget {
                deadline: Some(std::time::Duration::ZERO),
                ..Budget::default()
            },
            ..Default::default()
        };
        let engine = Engine::new(&ir, cfg);
        let res = engine.run().unwrap();
        assert!(matches!(res.stopped, Some(BudgetKind::Deadline { .. })));
        assert!(res.any_degraded(), "pending statements are marked stale");
        // The shared tables survive the cancellation: a fresh engine on the
        // same ShapeCtx (progressive-driver style) completes normally.
        let full =
            Engine::with_shape_ctx(&ir, EngineConfig::at_level(Level::L1), engine.ctx().clone())
                .run()
                .unwrap();
        assert!(full.is_complete());
        assert!(!full.any_degraded());
        assert!(!full.exit.is_empty());
    }

    #[test]
    fn rsg_cap_stops_softly() {
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let cfg = EngineConfig {
            level: Level::L1,
            budget: Budget {
                max_rsgs: Some(1),
                ..Budget::default()
            },
            ..Default::default()
        };
        let res = Engine::new(&ir, cfg).run().unwrap();
        assert!(matches!(
            res.stopped,
            Some(BudgetKind::Rsgs { limit: 1, .. })
        ));
        assert!(res.any_degraded());
    }

    #[test]
    fn both_caps_armed_reports_the_cap_that_tripped() {
        // Regression: with a deadline armed alongside another degradation
        // cap, any mid-statement cancellation used to be blamed on the
        // deadline. A one-byte table cap trips immediately while the
        // one-hour deadline never does — the stop reason must name the
        // table cap, and the cancel token must carry the true cause.
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let cfg = EngineConfig {
            level: Level::L1,
            budget: Budget {
                max_table_bytes: Some(1),
                deadline: Some(std::time::Duration::from_secs(3600)),
                ..Budget::default()
            },
            ..Default::default()
        };
        let engine = Engine::new(&ir, cfg);
        engine.ctx().tables.tracer.enable();
        let res = engine.run().unwrap();
        assert!(
            matches!(res.stopped, Some(BudgetKind::TableBytes { limit: 1, .. })),
            "stop reason must be the table cap, got {:?}",
            res.stopped
        );
        assert!(res.any_degraded());
        // The journal records exactly one raise, attributed to the true
        // cause (the token itself is reset at run end to keep the shared
        // tables reusable).
        let cancels: Vec<_> = engine
            .ctx()
            .tables
            .tracer
            .drain()
            .into_iter()
            .filter(|e| e.kind == psa_rsg::TraceKind::Cancel)
            .collect();
        assert_eq!(cancels.len(), 1, "one trace event per raise");
        assert_eq!(
            cancels[0].arg,
            psa_rsg::CancelCause::TableBytes.code() as u64
        );
    }

    #[test]
    fn budgets_unset_results_match_reference() {
        // The budget layer must be inert when no degradation cap is set.
        let (p, t) = parse_and_type(LIST_BUILD).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        let plain = Engine::new(&ir, EngineConfig::at_level(Level::L2))
            .run()
            .unwrap();
        assert!(plain.is_complete());
        assert!(!plain.any_degraded());
        let huge_caps = EngineConfig {
            level: Level::L2,
            budget: Budget {
                max_nodes: Some(1 << 20),
                max_rsgs: Some(1 << 20),
                max_table_bytes: Some(1 << 40),
                deadline: Some(std::time::Duration::from_secs(3600)),
                ..Budget::default()
            },
            ..Default::default()
        };
        let capped = Engine::new(&ir, huge_caps).run().unwrap();
        assert!(capped.is_complete());
        assert!(plain.exit.same_as(&capped.exit));
        for (a, b) in plain.after_stmt.iter().zip(&capped.after_stmt) {
            assert!(a.same_as(b));
        }
    }

    #[test]
    fn stats_are_populated() {
        let (_ir, res) = analyze(LIST_BUILD, Level::L1);
        assert!(res.stats.iterations > 0);
        assert!(res.stats.stmt_transfers > 0);
        assert!(res.stats.peak_bytes > 0);
        assert!(res.stats.max_graphs_per_stmt >= 1);
        assert!(res.stats.num_stmts > 0);
    }

    #[test]
    fn levels_all_converge_on_list_build() {
        for level in Level::ALL {
            let (_ir, res) = analyze(LIST_BUILD, level);
            assert!(!res.exit.is_empty(), "level {level} must converge");
        }
    }

    #[test]
    fn empty_function_analyzes() {
        let src = "int main() { return 0; }";
        let (_ir, res) = analyze(src, Level::L1);
        assert_eq!(res.exit.len(), 1);
        assert_eq!(res.exit.graphs()[0].num_nodes(), 0);
    }

    #[test]
    fn null_deref_warning_surfaces() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *p;
                p = NULL;
                p->nxt = NULL;
                return 0;
            }
        "#;
        let (_ir, res) = analyze(src, Level::L1);
        assert!(res
            .stats
            .warnings
            .iter()
            .any(|w| w.contains("NULL dereference")));
        // The crashing path yields no exit configuration.
        assert!(res.exit.is_empty());
    }
}
