//! # psa-codes — the paper's benchmark C codes and workload generators
//!
//! The four codes of Table 1, rewritten in the supported C subset exactly as
//! the paper describes them (their sources were never published; the data
//! structures and traversal skeletons follow §5 and Fig. 3):
//!
//! * [`sparse_matvec`] — sparse matrix (header list of rows, each row a list
//!   of elements) × vector (linked list), producing a result vector;
//! * [`sparse_matmat`] — sparse matrix × sparse matrix with result-row
//!   search-and-insert;
//! * [`sparse_lu`] — in-place sparse LU factorization over column lists with
//!   fill-in insertion (the code that exhausts the paper machine's memory at
//!   L2/L3);
//! * [`barnes_hut`] — the N-body code: a `Lbodies` singly-linked list, an
//!   octree with child lists, and an explicit traversal **stack** replacing
//!   the recursion (the paper performed that transformation manually, §5.1).
//!
//! [`generators`] produces synthetic pointer programs of parameterizable
//! size for the scaling/ablation benchmarks and a seeded random well-typed
//! program generator for differential soundness testing.

pub mod generators;
pub mod olden;

/// Parameters for the benchmark sources. The analysis result is independent
/// of the counts (loops are analyzed to a fixed point), but the concrete
/// interpreter executes them, so tests use small values.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// Rows/columns of matrices, bodies in Barnes-Hut.
    pub n: usize,
    /// Entries per row/column.
    pub m: usize,
}

impl Default for Sizes {
    fn default() -> Self {
        Sizes { n: 20, m: 5 }
    }
}

impl Sizes {
    /// Small sizes for concrete execution in tests.
    pub fn tiny() -> Sizes {
        Sizes { n: 4, m: 2 }
    }
}

/// Sparse matrix × vector multiplication (S.Mat-Vec in Table 1).
pub fn sparse_matvec(s: Sizes) -> String {
    let (n, m) = (s.n, s.m);
    format!(
        r#"
/* Sparse matrix-vector product over linked structures.
 * Matrix: header list of rows, each row a list of elements.
 * Vectors: linked lists of (idx, val). */
struct elem {{ int col; double val; struct elem *nxt; }};
struct row  {{ int idx; struct elem *elems; struct row *nxt; }};
struct vnode {{ int idx; double val; struct vnode *nxt; }};

int main() {{
    struct row *A;
    struct row *r;
    struct elem *e;
    struct vnode *x;
    struct vnode *y;
    struct vnode *v;
    struct vnode *w;
    int i;
    int j;
    double sum;

    /* Build the sparse matrix. */
    A = NULL;
    for (i = 0; i < {n}; i++) {{
        r = (struct row *) malloc(sizeof(struct row));
        r->idx = i;
        r->elems = NULL;
        for (j = 0; j < {m}; j++) {{
            e = (struct elem *) malloc(sizeof(struct elem));
            e->col = j;
            e->val = 1.5;
            e->nxt = r->elems;
            r->elems = e;
        }}
        r->nxt = A;
        A = r;
    }}

    /* Build the input vector. */
    x = NULL;
    for (i = 0; i < {n}; i++) {{
        v = (struct vnode *) malloc(sizeof(struct vnode));
        v->idx = i;
        v->val = 2.0;
        v->nxt = x;
        x = v;
    }}

    /* y = A * x */
    y = NULL;
    r = A;
    while (r != NULL) {{
        sum = 0.0;
        e = r->elems;
        while (e != NULL) {{
            v = x;
            while (v != NULL && v->idx != e->col) {{
                v = v->nxt;
            }}
            if (v != NULL) {{
                sum = sum + e->val * v->val;
            }}
            e = e->nxt;
        }}
        w = (struct vnode *) malloc(sizeof(struct vnode));
        w->idx = r->idx;
        w->val = sum;
        w->nxt = y;
        y = w;
        r = r->nxt;
    }}
    return 0;
}}
"#
    )
}

/// Sparse matrix × sparse matrix multiplication (S.Mat-Mat in Table 1).
pub fn sparse_matmat(s: Sizes) -> String {
    let (n, m) = (s.n, s.m);
    format!(
        r#"
/* Sparse matrix-matrix product: C = A * B, all stored as header lists of
 * rows holding element lists. Result rows grow by search-and-insert. */
struct elem {{ int col; double val; struct elem *nxt; }};
struct row  {{ int idx; struct elem *elems; struct row *nxt; }};

int main() {{
    struct row *A;
    struct row *B;
    struct row *C;
    struct row *ra;
    struct row *rb;
    struct row *rc;
    struct elem *ea;
    struct elem *eb;
    struct elem *ec;
    struct elem *ne;
    int i;
    int j;

    /* Build A and B. */
    A = NULL;
    for (i = 0; i < {n}; i++) {{
        ra = (struct row *) malloc(sizeof(struct row));
        ra->idx = i;
        ra->elems = NULL;
        for (j = 0; j < {m}; j++) {{
            ea = (struct elem *) malloc(sizeof(struct elem));
            ea->col = j;
            ea->val = 1.0;
            ea->nxt = ra->elems;
            ra->elems = ea;
        }}
        ra->nxt = A;
        A = ra;
    }}
    B = NULL;
    for (i = 0; i < {n}; i++) {{
        rb = (struct row *) malloc(sizeof(struct row));
        rb->idx = i;
        rb->elems = NULL;
        for (j = 0; j < {m}; j++) {{
            eb = (struct elem *) malloc(sizeof(struct elem));
            eb->col = j;
            eb->val = 0.5;
            eb->nxt = rb->elems;
            rb->elems = eb;
        }}
        rb->nxt = B;
        B = rb;
    }}

    /* C = A * B */
    C = NULL;
    ra = A;
    while (ra != NULL) {{
        rc = (struct row *) malloc(sizeof(struct row));
        rc->idx = ra->idx;
        rc->elems = NULL;
        ea = ra->elems;
        while (ea != NULL) {{
            /* find row of B with idx == ea->col */
            rb = B;
            while (rb != NULL && rb->idx != ea->col) {{
                rb = rb->nxt;
            }}
            if (rb != NULL) {{
                eb = rb->elems;
                while (eb != NULL) {{
                    /* search C's current row for column eb->col */
                    ec = rc->elems;
                    while (ec != NULL && ec->col != eb->col) {{
                        ec = ec->nxt;
                    }}
                    if (ec != NULL) {{
                        ec->val = ec->val + ea->val * eb->val;
                    }} else {{
                        ne = (struct elem *) malloc(sizeof(struct elem));
                        ne->col = eb->col;
                        ne->val = ea->val * eb->val;
                        ne->nxt = rc->elems;
                        rc->elems = ne;
                    }}
                    eb = eb->nxt;
                }}
            }}
            ea = ea->nxt;
        }}
        rc->nxt = C;
        C = rc;
        ra = ra->nxt;
    }}
    return 0;
}}
"#
    )
}

/// In-place sparse LU factorization (S.LU fact. in Table 1).
pub fn sparse_lu(s: Sizes) -> String {
    let (n, m) = (s.n, s.m);
    format!(
        r#"
/* Sparse LU factorization over a header list of columns. Updates entries
 * in place and inserts fill-in entries into other columns' lists — the
 * destructive-update pattern that makes this code the analysis stress
 * test of Table 1. */
struct ent {{ int row; double val; struct ent *nxt; }};
struct col {{ int idx; struct ent *ents; struct col *nxt; }};

int main() {{
    struct col *M;
    struct col *ck;
    struct col *cj;
    struct ent *e;
    struct ent *p;
    struct ent *q;
    struct ent *fi;
    int i;
    int j;
    double piv;

    /* Build the matrix: columns each holding a sorted entry list. */
    M = NULL;
    for (i = 0; i < {n}; i++) {{
        ck = (struct col *) malloc(sizeof(struct col));
        ck->idx = i;
        ck->ents = NULL;
        for (j = 0; j < {m}; j++) {{
            e = (struct ent *) malloc(sizeof(struct ent));
            e->row = j;
            e->val = 1.0 + i;
            e->nxt = ck->ents;
            ck->ents = e;
        }}
        ck->nxt = M;
        M = ck;
    }}

    /* Factorize. */
    ck = M;
    while (ck != NULL) {{
        p = ck->ents;
        if (p != NULL) {{
            piv = p->val;
            /* scale the sub-pivot entries */
            e = p->nxt;
            while (e != NULL) {{
                e->val = e->val / piv;
                e = e->nxt;
            }}
            /* update the remaining columns */
            cj = ck->nxt;
            while (cj != NULL) {{
                e = p->nxt;
                while (e != NULL) {{
                    q = cj->ents;
                    while (q != NULL && q->row < e->row) {{
                        q = q->nxt;
                    }}
                    if (q != NULL && q->row == e->row) {{
                        q->val = q->val - e->val * piv;
                    }} else {{
                        /* fill-in */
                        fi = (struct ent *) malloc(sizeof(struct ent));
                        fi->row = e->row;
                        fi->val = 0.0 - e->val * piv;
                        fi->nxt = cj->ents;
                        cj->ents = fi;
                    }}
                    e = e->nxt;
                }}
                cj = cj->nxt;
            }}
        }}
        ck = ck->nxt;
    }}
    return 0;
}}
"#
    )
}

/// Barnes-Hut N-body simulation (§5.1, Fig. 3): `Lbodies` body list, octree
/// with child lists, explicit traversal stack, three phases.
pub fn barnes_hut(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
/* Barnes-Hut N-body with the paper's manual transformations applied:
 * recursion turned into loops over an explicit stack (struct stk), all
 * subroutines inlined into main. The bodies live in the Lbodies list;
 * octree cells chain their children through child/next and leaves point
 * at bodies through body (Fig. 3(a)). */
struct body {{ double mass; double pos; double force; struct body *nxt; }};
struct cell {{ double mass; struct cell *child; struct cell *next; struct body *body; }};
struct stk  {{ struct stk *prev; struct cell *node; }};

struct body *Lbodies;

int main() {{
    struct body *b;
    struct cell *root;
    struct cell *cur;
    struct cell *q;
    struct cell *c;
    struct stk *top;
    struct stk *sp;
    int i;
    double m;
    double f;

    /* Create the Lbodies list. */
    Lbodies = NULL;
    for (i = 0; i < {n}; i++) {{
        b = (struct body *) malloc(sizeof(struct body));
        b->mass = 1.0;
        b->pos = i * 0.25;
        b->force = 0.0;
        b->nxt = Lbodies;
        Lbodies = b;
    }}

    /* (i) Build the octree by iterative insertion. */
    root = (struct cell *) malloc(sizeof(struct cell));
    root->mass = 0.0;
    root->child = NULL;
    root->next = NULL;
    root->body = NULL;
    b = Lbodies;
    while (b != NULL) {{
        cur = root;
        for (;;) {{
            if (cur->child == NULL) {{
                if (cur->body == NULL) {{
                    /* empty leaf: attach the body */
                    cur->body = b;
                    break;
                }} else {{
                    /* occupied leaf: split into a children list */
                    c = (struct cell *) malloc(sizeof(struct cell));
                    c->mass = 0.0;
                    c->child = NULL;
                    c->next = NULL;
                    c->body = cur->body;
                    cur->body = NULL;
                    cur->child = c;
                    q = (struct cell *) malloc(sizeof(struct cell));
                    q->mass = 0.0;
                    q->child = NULL;
                    q->next = cur->child;
                    q->body = NULL;
                    cur->child = q;
                }}
            }} else {{
                /* descend into the child subsquare for this position */
                q = cur->child;
                while (q->next != NULL && b->pos > 0.5) {{
                    q = q->next;
                }}
                cur = q;
            }}
        }}
        b = b->nxt;
    }}

    /* (ii) Compute masses over the octree (stack traversal). */
    top = (struct stk *) malloc(sizeof(struct stk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        cur = top->node;
        top = top->prev;
        q = cur->child;
        while (q != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = q;
            sp->prev = top;
            top = sp;
            q = q->next;
        }}
        m = 0.0;
        if (cur->body != NULL) {{
            m = m + 1.0;
        }}
        cur->mass = cur->mass + m;
    }}

    /* (iii) Compute the force on every body (stack traversal per body). */
    b = Lbodies;
    while (b != NULL) {{
        f = 0.0;
        top = (struct stk *) malloc(sizeof(struct stk));
        top->prev = NULL;
        top->node = root;
        while (top != NULL) {{
            cur = top->node;
            top = top->prev;
            f = f + cur->mass * 0.5;
            q = cur->child;
            while (q != NULL) {{
                sp = (struct stk *) malloc(sizeof(struct stk));
                sp->node = q;
                sp->prev = top;
                top = sp;
                q = q->next;
            }}
        }}
        b->force = f;
        b = b->nxt;
    }}
    return 0;
}}
"#
    )
}

/// All four Table 1 codes as `(name, source)` with the given sizes.
pub fn table1_codes(s: Sizes) -> Vec<(&'static str, String)> {
    vec![
        ("S.Mat-Vec", sparse_matvec(s)),
        ("S.Mat-Mat", sparse_matmat(s)),
        ("S.LU fact.", sparse_lu(s)),
        ("Barnes-Hut", barnes_hut(s)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codes_parse_and_type() {
        for (name, src) in table1_codes(Sizes::default()) {
            psa_cfront::parse_and_type(&src)
                .unwrap_or_else(|e| panic!("{name} fails to parse: {e}"));
        }
    }

    #[test]
    fn all_codes_lower() {
        for (name, src) in table1_codes(Sizes::default()) {
            let (p, t) = psa_cfront::parse_and_type(&src).unwrap();
            let ir =
                psa_ir::lower_main(&p, &t).unwrap_or_else(|e| panic!("{name} fails to lower: {e}"));
            assert!(
                ir.num_ptr_stmts() > 5,
                "{name} must contain pointer statements"
            );
            assert!(!ir.loops.is_empty(), "{name} must contain loops");
        }
    }

    #[test]
    fn barnes_hut_has_traversal_ipvars() {
        let src = barnes_hut(Sizes::default());
        let (p, t) = psa_cfront::parse_and_type(&src).unwrap();
        let ir = psa_ir::lower_main(&p, &t).unwrap();
        let b = ir.pvar_id("b").unwrap();
        let top = ir.pvar_id("top").unwrap();
        // Some loop must traverse via b (body list), some via top (stack).
        assert!(ir.loops.iter().any(|l| l.ipvars.contains(&b)));
        assert!(ir.loops.iter().any(|l| l.ipvars.contains(&top)));
    }

    #[test]
    fn sizes_parameterize_source() {
        let a = sparse_matvec(Sizes { n: 7, m: 3 });
        assert!(a.contains("i < 7"));
        assert!(a.contains("j < 3"));
    }
}
