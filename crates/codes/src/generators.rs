//! Synthetic workload generators: parameterizable pointer programs for the
//! scaling/ablation benchmarks and a seeded random well-typed program
//! generator for differential soundness testing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A program that builds a singly-linked list of `n` nodes and traverses it
/// `passes` times.
pub fn list_program(n: usize, passes: usize) -> String {
    let mut traversals = String::new();
    for _ in 0..passes {
        traversals
            .push_str("    p = list;\n    while (p != NULL) { p->v = p->v + 1; p = p->nxt; }\n");
    }
    format!(
        r#"
struct node {{ int v; struct node *nxt; }};
int main() {{
    struct node *list;
    struct node *p;
    int i;
    list = NULL;
    for (i = 0; i < {n}; i++) {{
        p = (struct node *) malloc(sizeof(struct node));
        p->v = i;
        p->nxt = list;
        list = p;
    }}
{traversals}    return 0;
}}
"#
    )
}

/// A program that builds a doubly-linked list of `n` nodes, traverses it
/// forward, then unlinks elements from the front.
pub fn dll_program(n: usize) -> String {
    format!(
        r#"
struct node {{ int v; struct node *nxt; struct node *prv; }};
int main() {{
    struct node *list;
    struct node *p;
    struct node *t;
    int i;
    list = NULL;
    for (i = 0; i < {n}; i++) {{
        p = (struct node *) malloc(sizeof(struct node));
        p->v = i;
        p->nxt = list;
        p->prv = NULL;
        if (list != NULL) {{
            list->prv = p;
        }}
        list = p;
    }}
    p = list;
    while (p != NULL) {{
        p->v = p->v * 2;
        p = p->nxt;
    }}
    while (list != NULL) {{
        t = list->nxt;
        list->nxt = NULL;
        if (t != NULL) {{
            t->prv = NULL;
        }}
        list = t;
    }}
    return 0;
}}
"#
    )
}

/// A program that builds a binary tree by repeated leaf insertion (branch
/// choice is an opaque scalar test) and then walks it with an explicit
/// stack.
pub fn tree_program(n: usize) -> String {
    format!(
        r#"
struct tnode {{ int v; struct tnode *l; struct tnode *r; }};
struct stk {{ struct stk *prev; struct tnode *node; }};
int main() {{
    struct tnode *root;
    struct tnode *cur;
    struct tnode *fresh;
    struct stk *top;
    struct stk *sp;
    int i;
    int sum;
    root = (struct tnode *) malloc(sizeof(struct tnode));
    root->v = 0;
    root->l = NULL;
    root->r = NULL;
    for (i = 1; i < {n}; i++) {{
        fresh = (struct tnode *) malloc(sizeof(struct tnode));
        fresh->v = i;
        fresh->l = NULL;
        fresh->r = NULL;
        cur = root;
        for (;;) {{
            if (i % 2 == 0) {{
                if (cur->l == NULL) {{
                    cur->l = fresh;
                    break;
                }} else {{
                    cur = cur->l;
                }}
            }} else {{
                if (cur->r == NULL) {{
                    cur->r = fresh;
                    break;
                }} else {{
                    cur = cur->r;
                }}
            }}
        }}
    }}
    /* stack walk */
    sum = 0;
    top = (struct stk *) malloc(sizeof(struct stk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        cur = top->node;
        top = top->prev;
        sum = sum + cur->v;
        if (cur->l != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = cur->l;
            sp->prev = top;
            top = sp;
        }}
        if (cur->r != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = cur->r;
            sp->prev = top;
            top = sp;
        }}
    }}
    return 0;
}}
"#
    )
}

/// A list-of-lists program (`n` outer rows of `m` inner items), the shape of
/// the sparse-matrix headers.
pub fn list_of_lists_program(n: usize, m: usize) -> String {
    format!(
        r#"
struct item {{ int v; struct item *nxt; }};
struct head {{ struct item *items; struct head *nxt; }};
int main() {{
    struct head *rows;
    struct head *h;
    struct item *it;
    int i;
    int j;
    rows = NULL;
    for (i = 0; i < {n}; i++) {{
        h = (struct head *) malloc(sizeof(struct head));
        h->items = NULL;
        for (j = 0; j < {m}; j++) {{
            it = (struct item *) malloc(sizeof(struct item));
            it->v = j;
            it->nxt = h->items;
            h->items = it;
        }}
        h->nxt = rows;
        rows = h;
    }}
    h = rows;
    while (h != NULL) {{
        it = h->items;
        while (it != NULL) {{
            it->v = it->v + 1;
            it = it->nxt;
        }}
        h = h->nxt;
    }}
    return 0;
}}
"#
    )
}

/// A seeded random but **well-typed** pointer program over `pvars` pointer
/// variables of one self-referential struct with two selectors, containing
/// straight-line pointer statements, `if` guards and bounded loops. Used by
/// the differential soundness tests: every generated program parses, lowers,
/// terminates concretely and never crashes (dereferences are NULL-guarded).
pub fn random_program(seed: u64, stmts: usize, pvars: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let pvars = pvars.clamp(2, 6);
    let names: Vec<String> = (0..pvars).map(|i| format!("v{i}")).collect();
    let sels = ["a", "b"];
    let mut body = String::new();
    let mut depth: usize = 0;
    let mut open_loops = 0usize;

    let emit = |body: &mut String, depth: usize, line: &str| {
        for _ in 0..depth + 1 {
            body.push_str("    ");
        }
        body.push_str(line);
        body.push('\n');
    };

    for k in 0..stmts {
        let x = &names[rng.gen_range(0..pvars)];
        let y = &names[rng.gen_range(0..pvars)];
        let t = &names[rng.gen_range(0..pvars)];
        let s = sels[rng.gen_range(0usize..2)];
        let s2 = sels[rng.gen_range(0usize..2)];
        match rng.gen_range(0..16) {
            0 => emit(&mut body, depth, &format!("{x} = NULL;")),
            1 | 2 => emit(
                &mut body,
                depth,
                &format!("{x} = (struct cell *) malloc(sizeof(struct cell));"),
            ),
            3 => emit(&mut body, depth, &format!("{x} = {y};")),
            4 | 5 => emit(
                &mut body,
                depth,
                &format!("if ({x} != NULL) {{ {x}->{s} = {y}; }}"),
            ),
            6 => emit(
                &mut body,
                depth,
                &format!("if ({x} != NULL) {{ {x}->{s} = NULL; }}"),
            ),
            7 | 8 => emit(
                &mut body,
                depth,
                &format!("if ({y} != NULL) {{ {x} = {y}->{s}; }}"),
            ),
            9 => emit(
                &mut body,
                depth,
                &format!("if ({x} != NULL && {x}->{s} != NULL) {{ {x}->{s}->{s2} = {y}; }}"),
            ),
            10 if depth < 2 && k + 4 < stmts => {
                // A bounded traversal loop.
                emit(&mut body, depth, &format!("{x} = {y};"));
                emit(&mut body, depth, &format!("while ({x} != NULL) {{"));
                depth += 1;
                open_loops += 1;
                emit(&mut body, depth, &format!("{x} = {x}->{s};"));
            }
            12 => {
                // Conditional free: the analysis must survive a dying
                // region (free lowers to a no-op, the NULLing is real).
                emit(
                    &mut body,
                    depth,
                    &format!("if ({x} != NULL) {{ free({x}); {x} = NULL; }}"),
                );
            }
            13 if t != x && t != y => {
                // Pointer swap through a third pvar.
                emit(&mut body, depth, &format!("{t} = {x};"));
                emit(&mut body, depth, &format!("{x} = {y};"));
                emit(&mut body, depth, &format!("{y} = {t};"));
            }
            14 => {
                // DLL-style back-link pair: creates the must-cycle pattern
                // CYCLELINKS exists for.
                emit(
                    &mut body,
                    depth,
                    &format!(
                        "if ({x} != NULL && {y} != NULL) {{ {x}->{s} = {y}; {y}->{s2} = {x}; }}"
                    ),
                );
            }
            15 => {
                // Tree-mutator leaf prune: cuts both children.
                emit(
                    &mut body,
                    depth,
                    &format!("if ({x} != NULL) {{ {x}->a = NULL; {x}->b = NULL; }}"),
                );
            }
            _ => {
                if open_loops > 0 {
                    depth -= 1;
                    open_loops -= 1;
                    emit(&mut body, depth, "}");
                } else {
                    emit(&mut body, depth, &format!("{x} = {y};"));
                }
            }
        }
    }
    while open_loops > 0 {
        depth -= 1;
        open_loops -= 1;
        emit(&mut body, depth, "}");
    }

    let decls: String = names
        .iter()
        .map(|n| format!("    struct cell *{n};\n"))
        .collect();
    format!(
        "struct cell {{ int v; struct cell *a; struct cell *b; }};\n\
         int main() {{\n{decls}{body}    return 0;\n}}\n"
    )
}

/// A seeded DLL stress program: build a doubly-linked list of `n` nodes,
/// then apply a random sequence of guarded mutations (front pop, front
/// push, cursor advance, unlink-after-cursor) that exercises the
/// CYCLELINKS machinery. Always NULL-guarded; always terminates.
pub fn dll_mutator_program(seed: u64, n: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = String::new();
    for _ in 0..n.max(4) {
        let op: &str = match rng.gen_range(0..4) {
            0 => {
                // Pop front.
                "    if (list != NULL) {\n        t = list->nxt;\n        list->nxt = NULL;\n        if (t != NULL) { t->prv = NULL; }\n        list = t;\n    }\n"
            }
            1 => {
                // Push front.
                "    p = (struct node *) malloc(sizeof(struct node));\n    p->nxt = list;\n    p->prv = NULL;\n    if (list != NULL) { list->prv = p; }\n    list = p;\n"
            }
            2 => {
                // (Re)seat and advance the cursor.
                "    if (c == NULL) { c = list; }\n    if (c != NULL) { c = c->nxt; }\n"
            }
            _ => {
                // Unlink the node after the cursor.
                "    if (c != NULL) {\n        t = c->nxt;\n        if (t != NULL) {\n            u = t->nxt;\n            c->nxt = u;\n            if (u != NULL) { u->prv = c; }\n            t->nxt = NULL;\n            t->prv = NULL;\n        }\n    }\n"
            }
        };
        ops.push_str(op);
    }
    format!(
        r#"
struct node {{ int v; struct node *nxt; struct node *prv; }};
int main() {{
    struct node *list;
    struct node *p;
    struct node *c;
    struct node *t;
    struct node *u;
    int i;
    list = NULL;
    c = NULL;
    for (i = 0; i < {n}; i++) {{
        p = (struct node *) malloc(sizeof(struct node));
        p->nxt = list;
        p->prv = NULL;
        if (list != NULL) {{
            list->prv = p;
        }}
        list = p;
    }}
{ops}    return 0;
}}
"#
    )
}

/// A seeded binary-tree stress program: build a small tree, then apply a
/// random sequence of guarded mutations (leaf prune, subtree graft — which
/// may create sharing or cycles, rotation-ish child swaps). The analysis
/// must stay a sound over-approximation through all of them.
pub fn tree_mutator_program(seed: u64, n: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = String::new();
    for _ in 0..n.max(4) {
        let op: &str = match rng.gen_range(0..4) {
            0 => {
                // Prune both children of the cursor.
                "    if (c != NULL) { c->l = NULL; c->r = NULL; }\n"
            }
            1 => {
                // Descend left-or-right (opaque choice).
                "    if (c == NULL) { c = root; }\n    if (c != NULL) {\n        if (i % 2 == 0) { c = c->l; } else { c = c->r; }\n    }\n    i = i + 1;\n"
            }
            2 => {
                // Graft: hang a fresh node on the cursor's left.
                "    if (c != NULL) {\n        f = (struct tnode *) malloc(sizeof(struct tnode));\n        f->l = NULL;\n        f->r = NULL;\n        c->l = f;\n    }\n"
            }
            _ => {
                // Cross-graft the root under the cursor: may introduce
                // sharing and cycles — exactly what the soundness oracle
                // wants to see survive.
                "    if (c != NULL) { c->r = root; }\n"
            }
        };
        ops.push_str(op);
    }
    format!(
        r#"
struct tnode {{ int v; struct tnode *l; struct tnode *r; }};
int main() {{
    struct tnode *root;
    struct tnode *c;
    struct tnode *f;
    int i;
    i = 0;
    root = (struct tnode *) malloc(sizeof(struct tnode));
    root->l = NULL;
    root->r = NULL;
    f = (struct tnode *) malloc(sizeof(struct tnode));
    f->l = NULL;
    f->r = NULL;
    root->l = f;
    f = (struct tnode *) malloc(sizeof(struct tnode));
    f->l = NULL;
    f->r = NULL;
    root->r = f;
    c = root;
{ops}    return 0;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_programs_parse_and_lower() {
        for seed in 0..12u64 {
            for src in [dll_mutator_program(seed, 8), tree_mutator_program(seed, 8)] {
                let (p, t) = psa_cfront::parse_and_type(&src)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
                psa_ir::lower_main(&p, &t).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn mutator_programs_are_deterministic() {
        assert_eq!(dll_mutator_program(7, 9), dll_mutator_program(7, 9));
        assert_eq!(tree_mutator_program(7, 9), tree_mutator_program(7, 9));
    }

    #[test]
    fn generated_programs_parse_and_lower() {
        for src in [
            list_program(10, 2),
            dll_program(8),
            tree_program(9),
            list_of_lists_program(5, 4),
        ] {
            let (p, t) = psa_cfront::parse_and_type(&src).unwrap();
            psa_ir::lower_main(&p, &t).unwrap();
        }
    }

    #[test]
    fn random_programs_always_valid() {
        for seed in 0..60 {
            let src = random_program(seed, 24, 4);
            let (p, t) = psa_cfront::parse_and_type(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: parse error {e}\n{src}"));
            psa_ir::lower_main(&p, &t)
                .unwrap_or_else(|e| panic!("seed {seed}: lower error {e}\n{src}"));
        }
    }

    #[test]
    fn random_program_is_deterministic() {
        assert_eq!(random_program(42, 20, 4), random_program(42, 20, 4));
        assert_ne!(random_program(42, 20, 4), random_program(43, 20, 4));
    }

    #[test]
    fn list_program_scales() {
        let small = list_program(5, 1);
        let big = list_program(500, 1);
        assert!(small.contains("i < 5"));
        assert!(big.contains("i < 500"));
    }
}
