//! Olden-style pointer benchmarks — the classic shape-analysis workload
//! suite, written in their **natural multi-function form**: recursive
//! builders and traversals where the originals are recursive, ordinary
//! helper functions elsewhere. `lower_program` inlines the non-recursive
//! helpers automatically and summarizes the recursive ones, so nothing
//! here needs the paper's manual flattening. The `*_flat` variants keep
//! the earlier recursion-free sources (explicit stacks, as the paper's
//! manual transformation produced) for differential comparison between
//! the summary path and the purely-inlined path.
//!
//! * [`treeadd`] builds a binary tree with a **recursive** `treealloc` and
//!   sums it with a **recursive** `treeadd` — the suite's canonical
//!   summary-path workload;
//! * [`power`] is a three-level hierarchy (root → branch list → leaf list)
//!   built through a helper, the nested-lists shape with multi-type
//!   selectors;
//! * [`em3d`] builds a **genuinely shared** bipartite graph — the analysis
//!   must report sharing (a true DAG), making it the negative control for
//!   the unshared-list claims;
//! * [`bisort`] builds a value tree with a **recursive** `randtree` and
//!   sorts it with a **recursive** `bimerge` swap pass;
//! * [`tsp`] threads a **doubly-linked tour list** through a binary tree
//!   of cities (nodes simultaneously on tree and list links);
//! * [`health`] is a 4-ary hierarchy (`kids[4]` array fields) with patient
//!   waiting lists that are drained with **`free`** — the memory-safety
//!   workload;
//! * [`perimeter`] is a quadtree built by a **recursive** subdivision over
//!   **array-of-pointer fields** (`struct quad *kids[4]`) and measured by
//!   a recursive perimeter walk;
//! * [`voronoi`] stores coordinates in a **nested struct by value**
//!   (`struct pt pos;`, accessed as `s->pos.x`).

use crate::Sizes;

/// Recursion depth for the tree-shaped codes: log₂ of the requested node
/// count, kept small so the concrete interpreter can execute the trees
/// within its step budget.
fn depth(s: Sizes) -> usize {
    (usize::BITS - 1 - s.n.max(2).leading_zeros()) as usize
}

/// Olden `treeadd` in its natural form: recursive tree construction
/// (`treealloc`) and recursive summation (`treeadd`), exactly the two
/// functions of the original benchmark. Both are self-recursive, so the
/// engine analyzes them through entry-graph summaries.
pub fn treeadd(s: Sizes) -> String {
    let d = depth(s);
    format!(
        r#"
struct tnode {{ int v; struct tnode *l; struct tnode *r; }};

struct tnode *mknode(int v) {{
    struct tnode *p;
    p = (struct tnode *) malloc(sizeof(struct tnode));
    p->v = v;
    p->l = NULL;
    p->r = NULL;
    return p;
}}

struct tnode *treealloc(int level) {{
    struct tnode *t;
    t = mknode(level);
    if (level > 0) {{
        t->l = treealloc(level - 1);
        t->r = treealloc(level - 1);
    }}
    return t;
}}

int treeadd(struct tnode *t) {{
    int sl;
    int sr;
    int total;
    if (t == NULL) {{
        return 0;
    }}
    sl = treeadd(t->l);
    sr = treeadd(t->r);
    total = sl + sr + t->v;
    return total;
}}

int main() {{
    struct tnode *root;
    int sum;
    root = treealloc({d});
    sum = treeadd(root);
    return 0;
}}
"#
    )
}

/// The recursion-free `treeadd`: iterative insertion plus an explicit
/// stack walk (the paper's manual transformation applied by hand).
pub fn treeadd_flat(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct tnode {{ int v; struct tnode *l; struct tnode *r; }};
struct stk {{ struct stk *prev; struct tnode *node; }};

struct tnode *mknode(int v) {{
    struct tnode *p;
    p = (struct tnode *) malloc(sizeof(struct tnode));
    p->v = v;
    p->l = NULL;
    p->r = NULL;
    return p;
}}

int main() {{
    struct tnode *root;
    struct tnode *cur;
    struct tnode *fresh;
    struct stk *top;
    struct stk *sp;
    int i;
    int sum;

    root = mknode(0);
    for (i = 1; i < {n}; i++) {{
        fresh = mknode(i);
        cur = root;
        for (;;) {{
            if (i % 2 == 0) {{
                if (cur->l == NULL) {{
                    cur->l = fresh;
                    break;
                }}
                cur = cur->l;
            }} else {{
                if (cur->r == NULL) {{
                    cur->r = fresh;
                    break;
                }}
                cur = cur->r;
            }}
        }}
    }}

    /* treeadd: sum via explicit stack */
    sum = 0;
    top = (struct stk *) malloc(sizeof(struct stk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        cur = top->node;
        top = top->prev;
        sum = sum + cur->v;
        if (cur->l != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = cur->l;
            sp->prev = top;
            top = sp;
        }}
        if (cur->r != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = cur->r;
            sp->prev = top;
            top = sp;
        }}
    }}
    return 0;
}}
"#
    )
}

/// Olden `power`: a root with a list of branches, each branch with a list
/// of leaves, built by a per-branch helper; a downward pass sets demand, an
/// upward-style pass accumulates (expressed as repeated traversals, as the
/// paper's codes do).
pub fn power(s: Sizes) -> String {
    let (n, m) = (s.n, s.m);
    format!(
        r#"
struct leaf   {{ double w; struct leaf *nxt; }};
struct branch {{ double w; struct leaf *leaves; struct branch *nxt; }};
struct rootn  {{ double total; struct branch *branches; }};

struct branch *mkbranch() {{
    struct branch *br;
    struct leaf *lf;
    int j;
    br = (struct branch *) malloc(sizeof(struct branch));
    br->w = 0.0;
    br->leaves = NULL;
    for (j = 0; j < {m}; j++) {{
        lf = (struct leaf *) malloc(sizeof(struct leaf));
        lf->w = 1.0;
        lf->nxt = br->leaves;
        br->leaves = lf;
    }}
    return br;
}}

int main() {{
    struct rootn *root;
    struct branch *br;
    struct leaf *lf;
    int i;
    double acc;

    root = (struct rootn *) malloc(sizeof(struct rootn));
    root->total = 0.0;
    root->branches = NULL;
    for (i = 0; i < {n}; i++) {{
        br = mkbranch();
        br->nxt = root->branches;
        root->branches = br;
    }}

    /* downward pass: set leaf demands */
    br = root->branches;
    while (br != NULL) {{
        lf = br->leaves;
        while (lf != NULL) {{
            lf->w = lf->w * 0.5;
            lf = lf->nxt;
        }}
        br = br->nxt;
    }}

    /* upward pass: accumulate into branches, then the root */
    br = root->branches;
    while (br != NULL) {{
        acc = 0.0;
        lf = br->leaves;
        while (lf != NULL) {{
            acc = acc + lf->w;
            lf = lf->nxt;
        }}
        br->w = acc;
        br = br->nxt;
    }}
    acc = 0.0;
    br = root->branches;
    while (br != NULL) {{
        acc = acc + br->w;
        br = br->nxt;
    }}
    root->total = acc;
    return 0;
}}
"#
    )
}

/// Olden `em3d`: a bipartite dependence graph built through node helpers.
/// Each E-node points (through a chain of `dep` cells) at H-nodes, and
/// H-nodes are deliberately shared between E-nodes — the shape analysis
/// must classify this as a DAG, not a tree of lists.
pub fn em3d(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct hnode {{ double v; struct hnode *nxt; }};
struct dep   {{ struct hnode *to; struct dep *nxt; }};
struct enode {{ double v; struct dep *deps; struct enode *nxt; }};

struct hnode *mkhnode(struct hnode *rest) {{
    struct hnode *h;
    h = (struct hnode *) malloc(sizeof(struct hnode));
    h->v = 1.0;
    h->nxt = rest;
    return h;
}}

struct enode *mkenode(struct hnode *hlist, struct enode *rest) {{
    struct enode *e;
    struct hnode *h;
    struct dep *d;
    e = (struct enode *) malloc(sizeof(struct enode));
    e->v = 0.0;
    e->deps = NULL;
    h = hlist;
    if (h != NULL) {{
        d = (struct dep *) malloc(sizeof(struct dep));
        d->to = h;
        d->nxt = e->deps;
        e->deps = d;
        h = h->nxt;
    }}
    if (h != NULL) {{
        d = (struct dep *) malloc(sizeof(struct dep));
        d->to = h;
        d->nxt = e->deps;
        e->deps = d;
    }}
    e->nxt = rest;
    return e;
}}

int main() {{
    struct hnode *hlist;
    struct enode *elist;
    struct enode *e;
    struct dep *d;
    int i;
    double acc;

    /* H nodes */
    hlist = NULL;
    for (i = 0; i < {n}; i++) {{
        hlist = mkhnode(hlist);
    }}

    /* E nodes, each depending on the first two H nodes (shared!) */
    elist = NULL;
    for (i = 0; i < {n}; i++) {{
        elist = mkenode(hlist, elist);
    }}

    /* compute phase: every E node reads its H dependencies */
    e = elist;
    while (e != NULL) {{
        acc = 0.0;
        d = e->deps;
        while (d != NULL) {{
            acc = acc + d->to->v;
            d = d->nxt;
        }}
        e->v = acc;
        e = e->nxt;
    }}
    return 0;
}}
"#
    )
}

/// Olden `bisort` in its natural form: a **recursive** `randtree` builder
/// and a **recursive** `bimerge` pass bubbling values downward, repeated
/// until no pass swaps — the sorting-network flavour of the original
/// bitonic sort, with the recursion kept.
pub fn bisort(s: Sizes) -> String {
    let (n, d) = (s.n, depth(s));
    format!(
        r#"
struct bnode {{ int v; struct bnode *l; struct bnode *r; }};

struct bnode *mkbnode(int v) {{
    struct bnode *p;
    p = (struct bnode *) malloc(sizeof(struct bnode));
    p->v = v;
    p->l = NULL;
    p->r = NULL;
    return p;
}}

struct bnode *randtree(int level, int seed) {{
    struct bnode *t;
    t = mkbnode(seed);
    if (level > 0) {{
        t->l = randtree(level - 1, seed * 7 % 19);
        t->r = randtree(level - 1, seed * 3 % 23);
    }}
    return t;
}}

/* one merge pass: swap out-of-order parent/child values, recurse */
int bimerge(struct bnode *t) {{
    int sl;
    int sr;
    int tmp;
    int swaps;
    if (t == NULL) {{
        return 0;
    }}
    swaps = 0;
    if (t->l != NULL) {{
        if (t->l->v < t->v) {{
            tmp = t->v;
            t->v = t->l->v;
            t->l->v = tmp;
            swaps = swaps + 1;
        }}
    }}
    if (t->r != NULL) {{
        if (t->r->v < t->v) {{
            tmp = t->v;
            t->v = t->r->v;
            t->r->v = tmp;
            swaps = swaps + 1;
        }}
    }}
    sl = bimerge(t->l);
    sr = bimerge(t->r);
    swaps = swaps + sl + sr;
    return swaps;
}}

int main() {{
    struct bnode *root;
    int pass;
    int swapped;
    root = randtree({d}, {n});
    swapped = 1;
    pass = 0;
    while (swapped > 0 && pass < {n}) {{
        swapped = bimerge(root);
        pass = pass + 1;
    }}
    return 0;
}}
"#
    )
}

/// The recursion-free `bisort`: iterative insertion and stack-walk swap
/// passes.
pub fn bisort_flat(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct bnode {{ int v; struct bnode *l; struct bnode *r; }};
struct bstk  {{ struct bstk *prev; struct bnode *node; }};

struct bnode *mkbnode(int v) {{
    struct bnode *p;
    p = (struct bnode *) malloc(sizeof(struct bnode));
    p->v = v;
    p->l = NULL;
    p->r = NULL;
    return p;
}}

int main() {{
    struct bnode *root;
    struct bnode *cur;
    struct bnode *fresh;
    struct bstk *top;
    struct bstk *sp;
    int i;
    int pass;
    int swapped;
    int tmp;

    root = mkbnode({n});
    for (i = 1; i < {n}; i++) {{
        fresh = mkbnode(({n} - i) * 7 % {n});
        cur = root;
        for (;;) {{
            if (i % 2 == 0) {{
                if (cur->l == NULL) {{ cur->l = fresh; break; }}
                cur = cur->l;
            }} else {{
                if (cur->r == NULL) {{ cur->r = fresh; break; }}
                cur = cur->r;
            }}
        }}
    }}

    /* bisort: bubble values downward until no pass swaps */
    swapped = 1;
    pass = 0;
    while (swapped == 1 && pass < {n}) {{
        swapped = 0;
        pass = pass + 1;
        top = (struct bstk *) malloc(sizeof(struct bstk));
        top->prev = NULL;
        top->node = root;
        while (top != NULL) {{
            cur = top->node;
            top = top->prev;
            if (cur->l != NULL) {{
                if (cur->l->v < cur->v) {{
                    tmp = cur->v;
                    cur->v = cur->l->v;
                    cur->l->v = tmp;
                    swapped = 1;
                }}
                sp = (struct bstk *) malloc(sizeof(struct bstk));
                sp->node = cur->l;
                sp->prev = top;
                top = sp;
            }}
            if (cur->r != NULL) {{
                if (cur->r->v < cur->v) {{
                    tmp = cur->v;
                    cur->v = cur->r->v;
                    cur->r->v = tmp;
                    swapped = 1;
                }}
                sp = (struct bstk *) malloc(sizeof(struct bstk));
                sp->node = cur->r;
                sp->prev = top;
                top = sp;
            }}
        }}
    }}
    return 0;
}}
"#
    )
}

/// Olden `tsp`: a binary tree of cities, then a **doubly-linked tour list**
/// threaded through the same nodes (tree links `l`/`r` and list links
/// `nxt`/`prv` coexist), then a pass over the tour accumulating the tour
/// length — the structure the paper's tsp kernel exhibits after its
/// conquer step.
pub fn tsp(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct city {{ double x; double y; struct city *l; struct city *r;
               struct city *nxt; struct city *prv; }};
struct cstk {{ struct cstk *prev; struct city *node; }};

struct city *mkcity(double x, double y) {{
    struct city *c;
    c = (struct city *) malloc(sizeof(struct city));
    c->x = x;
    c->y = y;
    c->l = NULL;
    c->r = NULL;
    c->nxt = NULL;
    c->prv = NULL;
    return c;
}}

int main() {{
    struct city *root;
    struct city *cur;
    struct city *fresh;
    struct city *first;
    struct city *last;
    struct cstk *top;
    struct cstk *sp;
    int i;
    double len;
    double dx;
    double dy;

    root = mkcity(0.0, 0.0);
    for (i = 1; i < {n}; i++) {{
        fresh = mkcity(1.0 * i, 1.0 * (i % 3));
        cur = root;
        for (;;) {{
            if (fresh->x < cur->x) {{
                if (cur->l == NULL) {{ cur->l = fresh; break; }}
                cur = cur->l;
            }} else {{
                if (cur->r == NULL) {{ cur->r = fresh; break; }}
                cur = cur->r;
            }}
        }}
    }}

    /* conquer: thread the doubly-linked tour through the tree nodes */
    first = NULL;
    last = NULL;
    top = (struct cstk *) malloc(sizeof(struct cstk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        cur = top->node;
        top = top->prev;
        if (first == NULL) {{
            first = cur;
        }} else {{
            last->nxt = cur;
            cur->prv = last;
        }}
        last = cur;
        if (cur->l != NULL) {{
            sp = (struct cstk *) malloc(sizeof(struct cstk));
            sp->node = cur->l;
            sp->prev = top;
            top = sp;
        }}
        if (cur->r != NULL) {{
            sp = (struct cstk *) malloc(sizeof(struct cstk));
            sp->node = cur->r;
            sp->prev = top;
            top = sp;
        }}
    }}

    /* tour length along the list */
    len = 0.0;
    cur = first;
    while (cur != NULL && cur->nxt != NULL) {{
        dx = cur->nxt->x - cur->x;
        dy = cur->nxt->y - cur->y;
        len = len + dx * dx + dy * dy;
        cur = cur->nxt;
    }}
    return 0;
}}
"#
    )
}

/// Olden `health`: a 4-ary hospital hierarchy built through **array
/// fields** (`struct vil *kids[4]`), each village holding a waiting list
/// of patients. The simulation admits patients and then **frees** treated
/// ones — the suite's memory-safety workload (malloc/free churn that the
/// checker must prove clean).
pub fn health(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct pat {{ int hosp; struct pat *nxt; }};
struct vil {{ int seed; struct vil *kids[4]; struct vil *all; struct pat *waiting; }};

struct vil *mkvil(int seed) {{
    struct vil *v;
    v = (struct vil *) malloc(sizeof(struct vil));
    v->seed = seed;
    v->kids[0] = NULL;
    v->kids[1] = NULL;
    v->kids[2] = NULL;
    v->kids[3] = NULL;
    v->all = NULL;
    v->waiting = NULL;
    return v;
}}

int main() {{
    struct vil *root;
    struct vil *v;
    struct vil *c;
    struct vil *vl;
    struct pat *p;
    struct pat *q;
    int t;

    /* two-level 4-ary hierarchy, threaded onto an `all` list */
    root = mkvil(1);
    vl = root;
    c = mkvil(2); root->kids[0] = c; c->all = vl; vl = c;
    c = mkvil(3); root->kids[1] = c; c->all = vl; vl = c;
    c = mkvil(4); root->kids[2] = c; c->all = vl; vl = c;
    c = mkvil(5); root->kids[3] = c; c->all = vl; vl = c;

    /* simulation: admit one patient per village per step, treat one */
    for (t = 0; t < {n}; t++) {{
        v = vl;
        while (v != NULL) {{
            p = (struct pat *) malloc(sizeof(struct pat));
            p->hosp = t;
            p->nxt = v->waiting;
            v->waiting = p;
            if (t % 2 == 1 && v->waiting != NULL) {{
                p = v->waiting;
                v->waiting = p->nxt;
                free(p);
                p = NULL;
            }}
            v = v->all;
        }}
    }}

    /* shutdown: drain every waiting list */
    v = vl;
    while (v != NULL) {{
        p = v->waiting;
        while (p != NULL) {{
            q = p->nxt;
            free(p);
            p = q;
        }}
        v->waiting = NULL;
        v = v->all;
    }}
    return 0;
}}
"#
    )
}

/// Olden `perimeter` in its natural form: a quadtree subdivided by a
/// **recursive** `buildtree` over the `kids[4]` array field, measured by a
/// **recursive** `perim` walk where black leaves contribute `4 * size`.
pub fn perimeter(s: Sizes) -> String {
    let (n, d) = (s.n, depth(s).min(3));
    format!(
        r#"
struct quad {{ int color; int size; struct quad *kids[4]; }};

struct quad *mkquad(int color, int size) {{
    struct quad *q;
    q = (struct quad *) malloc(sizeof(struct quad));
    q->color = color;
    q->size = size;
    q->kids[0] = NULL;
    q->kids[1] = NULL;
    q->kids[2] = NULL;
    q->kids[3] = NULL;
    return q;
}}

struct quad *buildtree(int level, int size) {{
    struct quad *q;
    q = mkquad(level % 2, size);
    if (level > 0) {{
        q->kids[0] = buildtree(level - 1, size / 2);
        q->kids[1] = buildtree(level - 1, size / 2);
        q->kids[2] = buildtree(level - 1, size / 2);
        q->kids[3] = buildtree(level - 1, size / 2);
    }}
    return q;
}}

int perim(struct quad *q) {{
    int acc;
    int k;
    if (q == NULL) {{
        return 0;
    }}
    if (q->kids[0] == NULL) {{
        if (q->color == 1) {{
            k = 4 * q->size;
            return k;
        }}
        return 0;
    }}
    acc = 0;
    k = perim(q->kids[0]);
    acc = acc + k;
    k = perim(q->kids[1]);
    acc = acc + k;
    k = perim(q->kids[2]);
    acc = acc + k;
    k = perim(q->kids[3]);
    acc = acc + k;
    return acc;
}}

int main() {{
    struct quad *root;
    int p;
    root = buildtree({d}, {n});
    p = perim(root);
    return 0;
}}
"#
    )
}

/// The recursion-free `perimeter`: hand-built two-level quadtree plus an
/// explicit stack walk.
pub fn perimeter_flat(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct quad {{ int color; int size; struct quad *kids[4]; }};
struct qstk {{ struct qstk *prev; struct quad *node; }};

struct quad *mkquad(int color, int size) {{
    struct quad *q;
    q = (struct quad *) malloc(sizeof(struct quad));
    q->color = color;
    q->size = size;
    q->kids[0] = NULL;
    q->kids[1] = NULL;
    q->kids[2] = NULL;
    q->kids[3] = NULL;
    return q;
}}

int main() {{
    struct quad *root;
    struct quad *q;
    struct quad *c;
    struct qstk *top;
    struct qstk *sp;
    int perim;

    /* root plus one subdivided quadrant, colours alternating */
    root = mkquad(0, {n});
    c = mkquad(1, {n} / 2); root->kids[0] = c;
    c = mkquad(0, {n} / 2); root->kids[1] = c;
    c = mkquad(1, {n} / 2); root->kids[2] = c;
    c = mkquad(0, {n} / 2); root->kids[3] = c;
    q = root->kids[1];
    c = mkquad(1, {n} / 4); q->kids[0] = c;
    c = mkquad(1, {n} / 4); q->kids[1] = c;
    c = mkquad(0, {n} / 4); q->kids[2] = c;
    c = mkquad(1, {n} / 4); q->kids[3] = c;

    /* perimeter: stack walk, black leaves contribute 4 * size */
    perim = 0;
    top = (struct qstk *) malloc(sizeof(struct qstk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        q = top->node;
        top = top->prev;
        if (q->kids[0] == NULL) {{
            if (q->color == 1) {{
                perim = perim + 4 * q->size;
            }}
        }} else {{
            sp = (struct qstk *) malloc(sizeof(struct qstk));
            sp->node = q->kids[0];
            sp->prev = top;
            top = sp;
            sp = (struct qstk *) malloc(sizeof(struct qstk));
            sp->node = q->kids[1];
            sp->prev = top;
            top = sp;
            sp = (struct qstk *) malloc(sizeof(struct qstk));
            sp->node = q->kids[2];
            sp->prev = top;
            top = sp;
            sp = (struct qstk *) malloc(sizeof(struct qstk));
            sp->node = q->kids[3];
            sp->prev = top;
            top = sp;
        }}
    }}
    return 0;
}}
"#
    )
}

/// Olden `voronoi` (sketch): sites carry their coordinates in a **nested
/// struct by value** (`struct pt pos;`), get organised into a binary tree
/// on `pos.x`, and an in-order stack walk chains neighbouring sites while
/// accumulating the squared edge lengths of the resulting diagram seam.
pub fn voronoi(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct pt   {{ double x; double y; }};
struct site {{ struct pt pos; struct site *l; struct site *r; struct site *nbr; }};
struct vstk {{ struct vstk *prev; struct site *node; }};

struct site *mksite(double x, double y) {{
    struct site *p;
    p = (struct site *) malloc(sizeof(struct site));
    p->pos.x = x;
    p->pos.y = y;
    p->l = NULL;
    p->r = NULL;
    p->nbr = NULL;
    return p;
}}

int main() {{
    struct site *root;
    struct site *cur;
    struct site *fresh;
    struct site *last;
    struct vstk *top;
    struct vstk *sp;
    int i;
    double acc;
    double dx;
    double dy;

    root = mksite(0.5, 0.5);
    for (i = 1; i < {n}; i++) {{
        fresh = mksite(1.0 * (i * 7 % {n}), 1.0 * (i % 5));
        cur = root;
        for (;;) {{
            if (fresh->pos.x < cur->pos.x) {{
                if (cur->l == NULL) {{ cur->l = fresh; break; }}
                cur = cur->l;
            }} else {{
                if (cur->r == NULL) {{ cur->r = fresh; break; }}
                cur = cur->r;
            }}
        }}
    }}

    /* seam: chain visited sites, accumulate squared edge lengths */
    last = NULL;
    acc = 0.0;
    top = (struct vstk *) malloc(sizeof(struct vstk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        cur = top->node;
        top = top->prev;
        if (last != NULL) {{
            last->nbr = cur;
            dx = cur->pos.x - last->pos.x;
            dy = cur->pos.y - last->pos.y;
            acc = acc + dx * dx + dy * dy;
        }}
        last = cur;
        if (cur->l != NULL) {{
            sp = (struct vstk *) malloc(sizeof(struct vstk));
            sp->node = cur->l;
            sp->prev = top;
            top = sp;
        }}
        if (cur->r != NULL) {{
            sp = (struct vstk *) malloc(sizeof(struct vstk));
            sp->node = cur->r;
            sp->prev = top;
            top = sp;
        }}
    }}
    return 0;
}}
"#
    )
}

/// All Olden-style codes as `(name, source)` in their natural
/// multi-function form (`treeadd`, `bisort` and `perimeter` recursive).
pub fn olden_codes(s: Sizes) -> Vec<(&'static str, String)> {
    vec![
        ("treeadd", treeadd(s)),
        ("power", power(s)),
        ("em3d", em3d(s)),
        ("bisort", bisort(s)),
        ("tsp", tsp(s)),
        ("health", health(s)),
        ("perimeter", perimeter(s)),
        ("voronoi", voronoi(s)),
    ]
}

/// The recursion-free variants (explicit stacks instead of recursion) for
/// the codes whose natural form recurses; the rest are shared with
/// [`olden_codes`]. Everything here analyzes through plain inlining.
pub fn olden_codes_flat(s: Sizes) -> Vec<(&'static str, String)> {
    vec![
        ("treeadd", treeadd_flat(s)),
        ("power", power(s)),
        ("em3d", em3d(s)),
        ("bisort", bisort_flat(s)),
        ("tsp", tsp(s)),
        ("health", health(s)),
        ("perimeter", perimeter_flat(s)),
        ("voronoi", voronoi(s)),
    ]
}

/// The codes of [`olden_codes`] whose natural form is recursive — the ones
/// the engine must take through the summary path.
pub const RECURSIVE_OLDEN: [&str; 3] = ["treeadd", "bisort", "perimeter"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olden_codes_parse_and_lower() {
        for (name, src) in olden_codes(Sizes::default()) {
            let (p, t) = psa_cfront::parse_and_type(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let ir = psa_ir::lower_program(&p, &t, "main")
                .unwrap_or_else(|e| panic!("{name}: lower: {e}"));
            let ptr_stmts = ir.num_ptr_stmts()
                + ir.callees
                    .iter()
                    .map(|c| c.ir.num_ptr_stmts())
                    .sum::<usize>();
            assert!(ptr_stmts > 5, "{name}");
            if RECURSIVE_OLDEN.contains(&name) {
                assert!(
                    !ir.callees.is_empty(),
                    "{name} should keep recursive callees"
                );
            } else {
                assert!(ir.callees.is_empty(), "{name} should inline away all calls");
            }
        }
    }

    #[test]
    fn flat_variants_lower_without_callees() {
        for (name, src) in olden_codes_flat(Sizes::default()) {
            let (p, t) = psa_cfront::parse_and_type(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let ir = psa_ir::lower_program(&p, &t, "main")
                .unwrap_or_else(|e| panic!("{name}: lower: {e}"));
            assert!(
                ir.callees.is_empty(),
                "{name} flat variant must not recurse"
            );
        }
    }

    #[test]
    fn treeadd_is_recursive() {
        let src = treeadd(Sizes::default());
        assert!(src.contains("t->l = treealloc(level - 1);"));
        assert!(src.contains("sl = treeadd(t->l);"));
    }

    #[test]
    fn full_suite_has_eight_codes() {
        let names: Vec<&str> = olden_codes(Sizes::tiny())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec![
                "treeadd",
                "power",
                "em3d",
                "bisort",
                "tsp",
                "health",
                "perimeter",
                "voronoi"
            ]
        );
        let flat: Vec<&str> = olden_codes_flat(Sizes::tiny())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, flat);
    }

    #[test]
    fn perimeter_uses_array_of_pointer_fields() {
        let src = perimeter(Sizes::tiny());
        assert!(src.contains("struct quad *kids[4];"));
        assert!(src.contains("q->kids[0] = buildtree(level - 1, size / 2);"));
    }

    #[test]
    fn voronoi_uses_nested_struct_by_value() {
        let src = voronoi(Sizes::tiny());
        assert!(src.contains("struct pt pos;"));
        assert!(src.contains("cur->pos.x"));
    }

    #[test]
    fn health_frees_treated_patients() {
        let src = health(Sizes::tiny());
        assert!(src.contains("free(p);"));
    }
}
