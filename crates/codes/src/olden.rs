//! Olden-style pointer benchmarks — the classic shape-analysis workload
//! suite (treeadd, power, em3d), rewritten in the supported C subset with
//! the paper's transformations (recursion → explicit stacks) applied. These
//! extend the validation beyond the paper's four codes:
//!
//! * [`treeadd`] exercises the **function inliner** (tree construction and
//!   the stack walk live in helper functions);
//! * [`power`] is a three-level hierarchy (root → branch list → leaf list),
//!   the nested-lists shape with multi-type selectors;
//! * [`em3d`] builds a **genuinely shared** bipartite graph — the analysis
//!   must report sharing (a true DAG), making it the negative control for
//!   the unshared-list claims.

use crate::Sizes;

/// Olden `treeadd`: build a binary tree, then sum all values with an
/// explicit stack. Uses helper functions (`mknode`, `insert`) that the
/// inliner must expand.
pub fn treeadd(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct tnode {{ int v; struct tnode *l; struct tnode *r; }};
struct stk {{ struct stk *prev; struct tnode *node; }};

struct tnode *mknode(int v) {{
    struct tnode *p;
    p = (struct tnode *) malloc(sizeof(struct tnode));
    p->v = v;
    p->l = NULL;
    p->r = NULL;
    return p;
}}

int main() {{
    struct tnode *root;
    struct tnode *cur;
    struct tnode *fresh;
    struct stk *top;
    struct stk *sp;
    int i;
    int sum;

    root = mknode(0);
    for (i = 1; i < {n}; i++) {{
        fresh = mknode(i);
        cur = root;
        for (;;) {{
            if (i % 2 == 0) {{
                if (cur->l == NULL) {{
                    cur->l = fresh;
                    break;
                }}
                cur = cur->l;
            }} else {{
                if (cur->r == NULL) {{
                    cur->r = fresh;
                    break;
                }}
                cur = cur->r;
            }}
        }}
    }}

    /* treeadd: sum via explicit stack */
    sum = 0;
    top = (struct stk *) malloc(sizeof(struct stk));
    top->prev = NULL;
    top->node = root;
    while (top != NULL) {{
        cur = top->node;
        top = top->prev;
        sum = sum + cur->v;
        if (cur->l != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = cur->l;
            sp->prev = top;
            top = sp;
        }}
        if (cur->r != NULL) {{
            sp = (struct stk *) malloc(sizeof(struct stk));
            sp->node = cur->r;
            sp->prev = top;
            top = sp;
        }}
    }}
    return 0;
}}
"#
    )
}

/// Olden `power`: a root with a list of branches, each branch with a list
/// of leaves; a downward pass sets demand, an upward-style pass accumulates
/// (expressed as repeated traversals, as the paper's codes do).
pub fn power(s: Sizes) -> String {
    let (n, m) = (s.n, s.m);
    format!(
        r#"
struct leaf   {{ double w; struct leaf *nxt; }};
struct branch {{ double w; struct leaf *leaves; struct branch *nxt; }};
struct rootn  {{ double total; struct branch *branches; }};

int main() {{
    struct rootn *root;
    struct branch *br;
    struct leaf *lf;
    int i;
    int j;
    double acc;

    root = (struct rootn *) malloc(sizeof(struct rootn));
    root->total = 0.0;
    root->branches = NULL;
    for (i = 0; i < {n}; i++) {{
        br = (struct branch *) malloc(sizeof(struct branch));
        br->w = 0.0;
        br->leaves = NULL;
        for (j = 0; j < {m}; j++) {{
            lf = (struct leaf *) malloc(sizeof(struct leaf));
            lf->w = 1.0;
            lf->nxt = br->leaves;
            br->leaves = lf;
        }}
        br->nxt = root->branches;
        root->branches = br;
    }}

    /* downward pass: set leaf demands */
    br = root->branches;
    while (br != NULL) {{
        lf = br->leaves;
        while (lf != NULL) {{
            lf->w = lf->w * 0.5;
            lf = lf->nxt;
        }}
        br = br->nxt;
    }}

    /* upward pass: accumulate into branches, then the root */
    br = root->branches;
    while (br != NULL) {{
        acc = 0.0;
        lf = br->leaves;
        while (lf != NULL) {{
            acc = acc + lf->w;
            lf = lf->nxt;
        }}
        br->w = acc;
        br = br->nxt;
    }}
    acc = 0.0;
    br = root->branches;
    while (br != NULL) {{
        acc = acc + br->w;
        br = br->nxt;
    }}
    root->total = acc;
    return 0;
}}
"#
    )
}

/// Olden `em3d`: a bipartite dependence graph. Each E-node points (through
/// a chain of `dep` cells) at H-nodes, and H-nodes are deliberately shared
/// between E-nodes — the shape analysis must classify this as a DAG, not a
/// tree of lists.
pub fn em3d(s: Sizes) -> String {
    let n = s.n;
    format!(
        r#"
struct hnode {{ double v; struct hnode *nxt; }};
struct dep   {{ struct hnode *to; struct dep *nxt; }};
struct enode {{ double v; struct dep *deps; struct enode *nxt; }};

int main() {{
    struct hnode *hlist;
    struct hnode *h;
    struct enode *elist;
    struct enode *e;
    struct dep *d;
    int i;
    double acc;

    /* H nodes */
    hlist = NULL;
    for (i = 0; i < {n}; i++) {{
        h = (struct hnode *) malloc(sizeof(struct hnode));
        h->v = 1.0;
        h->nxt = hlist;
        hlist = h;
    }}

    /* E nodes, each depending on the first two H nodes (shared!) */
    elist = NULL;
    for (i = 0; i < {n}; i++) {{
        e = (struct enode *) malloc(sizeof(struct enode));
        e->v = 0.0;
        e->deps = NULL;
        h = hlist;
        if (h != NULL) {{
            d = (struct dep *) malloc(sizeof(struct dep));
            d->to = h;
            d->nxt = e->deps;
            e->deps = d;
            h = h->nxt;
        }}
        if (h != NULL) {{
            d = (struct dep *) malloc(sizeof(struct dep));
            d->to = h;
            d->nxt = e->deps;
            e->deps = d;
        }}
        e->nxt = elist;
        elist = e;
    }}

    /* compute phase: every E node reads its H dependencies */
    e = elist;
    while (e != NULL) {{
        acc = 0.0;
        d = e->deps;
        while (d != NULL) {{
            acc = acc + d->to->v;
            d = d->nxt;
        }}
        e->v = acc;
        e = e->nxt;
    }}
    return 0;
}}
"#
    )
}

/// All Olden-style codes as `(name, source)`.
pub fn olden_codes(s: Sizes) -> Vec<(&'static str, String)> {
    vec![
        ("treeadd", treeadd(s)),
        ("power", power(s)),
        ("em3d", em3d(s)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olden_codes_parse_and_lower_with_inlining() {
        for (name, src) in olden_codes(Sizes::default()) {
            let (p, t) = psa_cfront::parse_and_type(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let p2 = psa_ir::inline_program(&p, "main")
                .unwrap_or_else(|e| panic!("{name}: inline: {e}"));
            let ir = psa_ir::lower_main(&p2, &t).unwrap_or_else(|e| panic!("{name}: lower: {e}"));
            assert!(ir.num_ptr_stmts() > 5, "{name}");
        }
    }

    #[test]
    fn treeadd_uses_helper_function() {
        let src = treeadd(Sizes::default());
        assert!(src.contains("struct tnode *mknode(int v)"));
        assert!(src.contains("root = mknode(0);"));
    }
}
