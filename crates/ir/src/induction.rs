//! Induction-pointer detection.
//!
//! The paper restricts TOUCH sets to *induction pointers* — "those pvars
//! which are used to traverse dynamic data structures (called induction
//! pointers by Yuan-Shin Hwang)" — found by a preprocessing pass "based on
//! Access Path Expressions" (§3).
//!
//! We reconstruct that pass as a cycle analysis over the per-loop pointer
//! value-flow graph: inside loop `L`, every `x = y` contributes an
//! ε-labelled edge `y → x`, every `x = y->sel` a selector-labelled edge.
//! A pvar is an induction pointer of `L` when it lies on a value-flow cycle
//! that traverses at least one selector edge: its value in iteration *i+1*
//! is derived from its value in iteration *i* through one or more selector
//! dereferences — precisely Hwang's access-path recurrence `x = x(->sel)+`.
//!
//! Compiler temporaries participate in the flow graph (chains route through
//! them) but are never reported as induction pointers; they are killed
//! immediately after use, so TOUCH could never observe them anyway.

use crate::func::{FuncIr, LoopId, PtrStmt, PvarId, Stmt};

/// Detect the induction pointers of every loop and store them into
/// `ir.loops[..].ipvars` (sorted).
pub fn detect(ir: &mut FuncIr) {
    let n = ir.num_pvars();
    for li in 0..ir.loops.len() {
        let lid = LoopId(li as u32);
        // Collect value-flow edges for statements inside this loop.
        // edge (from, to, via_selector)
        let mut edges: Vec<(PvarId, PvarId, bool)> = Vec::new();
        for s in &ir.stmts {
            if !s.loops.contains(&lid) {
                continue;
            }
            if let Stmt::Ptr(p) = &s.stmt {
                match *p {
                    PtrStmt::Copy(x, y) => edges.push((y, x, false)),
                    PtrStmt::Load(x, y, _) => edges.push((y, x, true)),
                    _ => {}
                }
            }
        }
        let ipvars = cyclic_with_selector(n, &edges);
        let mut result: Vec<PvarId> = ipvars
            .into_iter()
            .filter(|p| !ir.pvar(*p).is_temp)
            .collect();
        result.sort_unstable();
        result.dedup();
        ir.loops[li].ipvars = result;
    }
}

/// Return all pvars lying on a value-flow cycle that includes at least one
/// selector-labelled edge, using Tarjan SCCs: a pvar qualifies when its SCC
/// contains an internal selector edge (or, for trivial SCCs, a selector
/// self-edge).
fn cyclic_with_selector(n: usize, edges: &[(PvarId, PvarId, bool)]) -> Vec<PvarId> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to, _) in edges {
        adj[from.0 as usize].push(to.0 as usize);
    }
    let scc = tarjan(n, &adj);
    // An SCC is "traversing" if some selector edge connects two of its
    // members (including self-edges).
    let mut traversing = vec![false; n];
    for &(from, to, via_sel) in edges {
        if via_sel && scc[from.0 as usize] == scc[to.0 as usize] {
            // Trivial SCCs (single node, no self edge) are excluded unless
            // this is a self-edge `x = x->sel`.
            traversing[from.0 as usize] = true;
        }
    }
    // Mark every member of a traversing SCC.
    let mut scc_traversing = std::collections::BTreeMap::new();
    for v in 0..n {
        if traversing[v] {
            scc_traversing.insert(scc[v], true);
        }
    }
    (0..n)
        .filter(|&v| *scc_traversing.get(&scc[v]).unwrap_or(&false))
        .map(|v| PvarId(v as u32))
        .collect()
}

/// Iterative Tarjan strongly-connected components; returns the SCC index of
/// each vertex.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    #[derive(Clone, Copy)]
    struct VState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut st = vec![
        VState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    for root in 0..n {
        if st[root].visited {
            continue;
        }
        // Explicit DFS stack: (vertex, next child index).
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        st[root].visited = true;
        st[root].index = next_index;
        st[root].lowlink = next_index;
        next_index += 1;
        stack.push(root);
        st[root].on_stack = true;

        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if !st[w].visited {
                    st[w].visited = true;
                    st[w].index = next_index;
                    st[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    st[w].on_stack = true;
                    dfs.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = st[v].lowlink;
                    st[parent].lowlink = st[parent].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        st[w].on_stack = false;
                        scc_of[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use psa_cfront::parse_and_type;

    fn lower(body: &str) -> FuncIr {
        let src = format!(
            "struct node {{ int v; struct node *nxt; struct node *prv; struct node *dn; }};\n\
             int main() {{ {body} return 0; }}"
        );
        let (p, t) = parse_and_type(&src).unwrap();
        lower_main(&p, &t).unwrap()
    }

    #[test]
    fn simple_traversal_pointer() {
        let ir = lower("struct node *p; while (p != NULL) { p = p->nxt; }");
        let p = ir.pvar_id("p").unwrap();
        assert_eq!(ir.loops[0].ipvars, vec![p]);
    }

    #[test]
    fn chained_traversal_through_copy() {
        // q = p; p = q->nxt: both advance through the structure.
        let ir = lower(
            "struct node *p; struct node *q;\n\
             while (p != NULL) { q = p; p = q->nxt; }",
        );
        let p = ir.pvar_id("p").unwrap();
        let q = ir.pvar_id("q").unwrap();
        assert_eq!(ir.loops[0].ipvars, vec![p, q]);
    }

    #[test]
    fn non_traversal_pointer_excluded() {
        // `head` is loop-invariant, `p` traverses.
        let ir = lower(
            "struct node *p; struct node *head;\n\
             while (p != NULL) { p = p->nxt; p->dn = head; }",
        );
        let p = ir.pvar_id("p").unwrap();
        let head = ir.pvar_id("head").unwrap();
        assert!(ir.loops[0].ipvars.contains(&p));
        assert!(!ir.loops[0].ipvars.contains(&head));
    }

    #[test]
    fn copy_only_cycle_is_not_induction() {
        // p = q; q = p: a cycle with no selector edge — not traversal.
        let ir = lower(
            "struct node *p; struct node *q; int i;\n\
             while (i < 3) { p = q; q = p; i = i + 1; }",
        );
        assert!(ir.loops[0].ipvars.is_empty());
    }

    #[test]
    fn two_step_traversal() {
        // p = p->nxt->nxt routes through a temp; p is induction, the temp
        // never reported.
        let ir = lower("struct node *p; while (p != NULL) { p = p->nxt->nxt; }");
        let p = ir.pvar_id("p").unwrap();
        assert_eq!(ir.loops[0].ipvars, vec![p]);
    }

    #[test]
    fn per_loop_separation() {
        let ir = lower(
            "struct node *p; struct node *q;\n\
             while (p != NULL) { p = p->nxt; }\n\
             while (q != NULL) { q = q->prv; }",
        );
        let p = ir.pvar_id("p").unwrap();
        let q = ir.pvar_id("q").unwrap();
        assert_eq!(ir.loops[0].ipvars, vec![p]);
        assert_eq!(ir.loops[1].ipvars, vec![q]);
    }

    #[test]
    fn nested_loops_both_detect() {
        let ir = lower(
            "struct node *p; struct node *q;\n\
             while (p != NULL) {\n\
               q = p->dn;\n\
               while (q != NULL) { q = q->nxt; }\n\
               p = p->nxt;\n\
             }",
        );
        let p = ir.pvar_id("p").unwrap();
        let q = ir.pvar_id("q").unwrap();
        // Outer loop: p traverses; q also derives from p each iteration but
        // q's cycle q->nxt is within the inner loop (and the inner loop's
        // statements are also inside the outer loop, so q qualifies there
        // too).
        assert!(ir.loops[0].ipvars.contains(&p));
        assert_eq!(ir.loops[1].ipvars, vec![q]);
    }

    #[test]
    fn stack_push_pop_traversal() {
        // The Barnes-Hut pattern: a stack traversed by `top = top->prev`.
        let src = r#"
            struct stk { struct stk *prev; struct tree *node; };
            struct tree { struct tree *child; };
            int main() {
                struct stk *top;
                struct tree *cur;
                while (top != NULL) {
                    cur = top->node;
                    top = top->prev;
                }
                return 0;
            }
        "#;
        let (p, t) = psa_cfront::parse_and_type(src).unwrap();
        let ir = crate::lower::lower_main(&p, &t).unwrap();
        let top = ir.pvar_id("top").unwrap();
        let cur = ir.pvar_id("cur").unwrap();
        assert!(ir.loops[0].ipvars.contains(&top));
        // `cur` reads through top but never feeds back into itself.
        assert!(!ir.loops[0].ipvars.contains(&cur));
    }

    #[test]
    fn tarjan_handles_diamond() {
        // Pure unit test of the SCC helper on a diamond with a back edge.
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![0]];
        let scc = super::tarjan(4, &adj);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[0], scc[2]);
        assert_eq!(scc[0], scc[3]);
    }

    #[test]
    fn tarjan_separates_components() {
        let adj = vec![vec![1], vec![0], vec![3], vec![]];
        let scc = super::tarjan(4, &adj);
        assert_eq!(scc[0], scc[1]);
        assert_ne!(scc[2], scc[3]);
        assert_ne!(scc[0], scc[2]);
    }
}
