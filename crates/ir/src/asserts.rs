//! Resolution of `@assert` comments against a lowered function: names to
//! pvar/selector ids, comment lines to program points.
//!
//! An assertion written on line *L* binds to the program point **before**
//! the first statement whose source line is ≥ *L* — i.e. "right here, every
//! time control passes this spot". An assertion after the last statement
//! binds to the function exit (the join over all `return` states). For a
//! point inside a loop the abstract check therefore sees the fixed-point
//! join over all iterations, and the concrete check sees every iteration's
//! state — exactly the per-statement RSRSG / trace-point granularity the
//! rest of the system already uses.

use crate::func::{FuncIr, PvarId, StmtId};
use psa_cfront::asserts::{Expectation, RawAssert, RawPred, ShapeName};
use psa_cfront::diag::Diagnostic;
use psa_cfront::types::SelectorId;

/// A predicate with resolved operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertPred {
    /// `shape(x, class)`.
    Shape(PvarId, ShapeName),
    /// `shared(x->sel)`.
    Shared(PvarId, SelectorId),
    /// `reach(x, y)`.
    Reach(PvarId, PvarId),
    /// `alias(p, q)`.
    Alias(PvarId, PvarId),
    /// `acyclic(x)`.
    Acyclic(PvarId),
}

/// The program point an assertion is checked at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertSite {
    /// Immediately before the statement executes (every time).
    Before(StmtId),
    /// At function exit (join over all returns; concretely, the final state
    /// of every run that returns).
    Exit,
}

/// A fully resolved assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assertion {
    /// The predicate.
    pub pred: AssertPred,
    /// Leading `!`.
    pub negated: bool,
    /// Where it is checked.
    pub site: AssertSite,
    /// 1-based source line of the comment.
    pub line: u32,
    /// Canonical rendering, e.g. `!shared(x->nxt)`.
    pub text: String,
    /// Expected verdicts from the corpus `; expect …` suffix.
    pub expect: Vec<Expectation>,
}

/// Resolve raw assertions against a lowered function. Unknown pointer
/// variables and selectors are reported with the comment's span; compiler
/// temporaries are not addressable.
pub fn resolve_asserts(ir: &FuncIr, raws: &[RawAssert]) -> Result<Vec<Assertion>, Diagnostic> {
    raws.iter().map(|r| resolve_one(ir, r)).collect()
}

/// Convenience: extract and resolve in one step.
pub fn asserts_of_source(src: &str, ir: &FuncIr) -> Result<Vec<Assertion>, Diagnostic> {
    let raws = psa_cfront::asserts::extract_asserts(src)?;
    resolve_asserts(ir, &raws)
}

fn resolve_one(ir: &FuncIr, raw: &RawAssert) -> Result<Assertion, Diagnostic> {
    let pvar = |name: &str| -> Result<PvarId, Diagnostic> {
        match ir.pvar_id(name) {
            Some(p) if !ir.pvar(p).is_temp => Ok(p),
            _ => Err(Diagnostic::error(
                raw.span,
                format!("@assert: unknown pointer variable `{name}`"),
            )),
        }
    };
    let selector = |name: &str| -> Result<SelectorId, Diagnostic> {
        ir.types.selector_id(name).ok_or_else(|| {
            Diagnostic::error(raw.span, format!("@assert: unknown selector `{name}`"))
        })
    };
    let pred = match &raw.pred {
        RawPred::Shape(x, k) => AssertPred::Shape(pvar(x)?, *k),
        RawPred::Shared(x, s) => AssertPred::Shared(pvar(x)?, selector(s)?),
        RawPred::Reach(x, y) => AssertPred::Reach(pvar(x)?, pvar(y)?),
        RawPred::Alias(p, q) => AssertPred::Alias(pvar(p)?, pvar(q)?),
        RawPred::Acyclic(x) => AssertPred::Acyclic(pvar(x)?),
    };
    Ok(Assertion {
        pred,
        negated: raw.negated,
        site: site_for_line(ir, raw.line),
        line: raw.line,
        text: raw.render(),
        expect: raw.expect.clone(),
    })
}

/// The program point for an assertion on source line `line`: before the
/// first statement at or after that line (by source position, ties broken
/// by statement id), or `Exit` when no statement follows.
pub fn site_for_line(ir: &FuncIr, line: u32) -> AssertSite {
    let mut best: Option<(u32, StmtId)> = None;
    for (i, si) in ir.stmts.iter().enumerate() {
        if si.span.is_synth() || si.span.line < line {
            continue;
        }
        let cand = (si.span.line, StmtId(i as u32));
        if best.is_none_or(|b| cand < b) {
            best = Some(cand);
        }
    }
    match best {
        Some((_, s)) => AssertSite::Before(s),
        None => AssertSite::Exit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_cfront::parse_and_type;

    fn lower(src: &str) -> FuncIr {
        let (p, t) = parse_and_type(src).unwrap();
        crate::lower_main(&p, &t).unwrap()
    }

    const SRC: &str = r#"
struct node { int v; struct node *nxt; };
int main() {
    struct node *x;
    struct node *y;
    x = (struct node *) malloc(sizeof(struct node));
    // @assert !alias(x, y)
    y = x;
    // @assert alias(x, y)
    return 0;
}
"#;

    #[test]
    fn resolves_and_attaches() {
        let ir = lower(SRC);
        let asserts = asserts_of_source(SRC, &ir).unwrap();
        assert_eq!(asserts.len(), 2);
        // First assert (line 7) binds before `y = x` (line 8); the second
        // (line 9) before `return` — no statement follows, so Exit.
        match asserts[0].site {
            AssertSite::Before(s) => assert_eq!(ir.stmt(s).span.line, 8),
            AssertSite::Exit => panic!("should bind to y = x"),
        }
        assert_eq!(asserts[1].site, AssertSite::Exit);
        let x = ir.pvar_id("x").unwrap();
        let y = ir.pvar_id("y").unwrap();
        assert_eq!(asserts[0].pred, AssertPred::Alias(x, y));
        assert!(asserts[0].negated);
    }

    #[test]
    fn unknown_pvar_diagnostic() {
        let ir = lower(SRC);
        let src = SRC.replace("!alias(x, y)", "!alias(x, zz)");
        let err = asserts_of_source(&src, &ir).unwrap_err();
        assert!(err.to_string().contains("unknown pointer variable `zz`"));
    }

    #[test]
    fn unknown_selector_diagnostic() {
        let ir = lower(SRC);
        let src = SRC.replace("!alias(x, y)", "shared(x->prev)");
        let err = asserts_of_source(&src, &ir).unwrap_err();
        assert!(err.to_string().contains("unknown selector `prev`"));
    }

    #[test]
    fn temps_are_not_addressable() {
        let ir = lower(SRC);
        let src = SRC.replace("!alias(x, y)", "acyclic(@t0)");
        // `@` does not tokenize — any spelling of a temp is rejected one
        // way or another; a plain unknown name gives the pvar diagnostic.
        assert!(asserts_of_source(&src, &ir).is_err());
    }
}
