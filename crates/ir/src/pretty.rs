//! Human-readable printing of the lowered IR, for traces and the CLI.

use crate::func::{Cond, FuncIr, PtrStmt, Stmt, Terminator};
use std::fmt::Write;

/// Render one pointer statement using source-level names.
pub fn ptr_stmt(ir: &FuncIr, s: &PtrStmt) -> String {
    match *s {
        PtrStmt::Nil(x) => format!("{} = NULL", ir.pvar_name(x)),
        PtrStmt::Malloc(x, t) => {
            format!(
                "{} = malloc(struct {})",
                ir.pvar_name(x),
                ir.types.struct_info(t).name
            )
        }
        PtrStmt::Copy(x, y) => format!("{} = {}", ir.pvar_name(x), ir.pvar_name(y)),
        PtrStmt::StoreNil(x, sel) => {
            format!(
                "{}->{} = NULL",
                ir.pvar_name(x),
                ir.types.selector_name(sel)
            )
        }
        PtrStmt::Store(x, sel, y) => format!(
            "{}->{} = {}",
            ir.pvar_name(x),
            ir.types.selector_name(sel),
            ir.pvar_name(y)
        ),
        PtrStmt::Load(x, y, sel) => format!(
            "{} = {}->{}",
            ir.pvar_name(x),
            ir.pvar_name(y),
            ir.types.selector_name(sel)
        ),
    }
}

/// Render one statement.
pub fn stmt(ir: &FuncIr, s: &Stmt) -> String {
    match s {
        Stmt::Ptr(p) => ptr_stmt(ir, p),
        Stmt::ScalarStore(b, d) => format!("scalar store: {}{d}", ir.pvar_name(*b)),
        Stmt::ScalarConst(v, k) => format!("{} = {k}", ir.scalar_name(*v)),
        Stmt::ScalarHavoc(_, d) => format!("scalar: {d}"),
        Stmt::Free(x) => format!("free({})", ir.pvar_name(*x)),
        Stmt::Scalar(d) => format!("scalar: {d}"),
        Stmt::Call(c) => {
            let name = ir
                .callees
                .get(c.callee as usize)
                .map(|f| f.name.as_str())
                .unwrap_or("?");
            let mut args: Vec<String> = c
                .ptr_args
                .iter()
                .map(|a| match a {
                    crate::func::CallArg::Null => "NULL".to_string(),
                    crate::func::CallArg::Pvar(p) => ir.pvar_name(*p).to_string(),
                })
                .collect();
            args.extend(c.scalar_args.iter().map(|a| match a {
                crate::func::CallScalarArg::Const(v) => v.to_string(),
                crate::func::CallScalarArg::Var(s) => ir.scalar_name(*s).to_string(),
                crate::func::CallScalarArg::Opaque => "<scalar>".to_string(),
            }));
            let call = format!("{name}({})", args.join(", "));
            match (c.ret_ptr, c.ret_scalar) {
                (Some(x), _) => format!("{} = {call}", ir.pvar_name(x)),
                (None, Some(s)) => format!("{} = {call}", ir.scalar_name(s)),
                (None, None) => call,
            }
        }
    }
}

/// Render a condition.
pub fn cond(ir: &FuncIr, c: &Cond) -> String {
    match *c {
        Cond::PtrNull(x) => format!("{} == NULL", ir.pvar_name(x)),
        Cond::PtrEq(x, y) => format!("{} == {}", ir.pvar_name(x), ir.pvar_name(y)),
        Cond::ScalarEq(v, k) => format!("{} == {k}", ir.scalar_name(v)),
        Cond::Opaque => "<scalar>".to_string(),
    }
}

/// Render the whole function as a block listing.
pub fn func(ir: &FuncIr) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "function {} (entry {}):", ir.name, ir.entry);
    for (i, b) in ir.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{i}:");
        for &sid in &b.stmts {
            let info = ir.stmt(sid);
            let loops = if info.loops.is_empty() {
                String::new()
            } else {
                format!(
                    "  [{}]",
                    info.loops
                        .iter()
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            let _ = writeln!(out, "    {}: {}{}", sid, stmt(ir, &info.stmt), loops);
        }
        match b.term {
            Terminator::Goto(t) => {
                let _ = writeln!(out, "    goto {t}");
            }
            Terminator::Branch {
                cond: c,
                then_bb,
                else_bb,
            } => {
                let _ = writeln!(
                    out,
                    "    if {} then {} else {}",
                    cond(ir, &c),
                    then_bb,
                    else_bb
                );
            }
            Terminator::Return => {
                let _ = writeln!(out, "    return");
            }
        }
    }
    for (li, l) in ir.loops.iter().enumerate() {
        let ip: Vec<&str> = l.ipvars.iter().map(|p| ir.pvar_name(*p)).collect();
        let _ = writeln!(
            out,
            "loop L{li}: header {}, depth {}, ipvars [{}]",
            l.header,
            l.depth,
            ip.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::lower::lower_main;
    use psa_cfront::parse_and_type;

    #[test]
    fn renders_without_panicking() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *p;
                struct node *l;
                l = NULL;
                while (p != NULL) { p = p->nxt; }
                return 0;
            }
        "#;
        let (prog, table) = parse_and_type(src).unwrap();
        let ir = lower_main(&prog, &table).unwrap();
        let text = super::func(&ir);
        assert!(text.contains("p = p->nxt"));
        assert!(text.contains("l = NULL"));
        assert!(text.contains("ipvars [p]"));
        assert!(text.contains("p == NULL"));
    }

    #[test]
    fn renders_malloc_and_stores() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = p;
                p->nxt = NULL;
                return 0;
            }
        "#;
        let (prog, table) = parse_and_type(src).unwrap();
        let ir = lower_main(&prog, &table).unwrap();
        let text = super::func(&ir);
        assert!(text.contains("p = malloc(struct node)"));
        assert!(text.contains("p->nxt = p"));
        assert!(text.contains("p->nxt = NULL"));
    }
}
