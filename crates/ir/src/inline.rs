//! Automatic function inlining — the preprocessing the paper performed by
//! hand ("we have manually carried out the inline of the subroutine",
//! §5.1) and lists as future work.
//!
//! The inliner rewrites the AST so the entry function contains no calls to
//! user-defined functions:
//!
//! * every call site `f(a1, …)` (statement position) or `x = f(a1, …)`
//!   (assignment position) is replaced by fresh parameter locals, the
//!   renamed body, and — for value-returning calls — an assignment from the
//!   return expression;
//! * locals and parameters of the callee are α-renamed
//!   (`__inl<k>_<name>`), so repeated call sites never collide;
//! * inlining recurses into the substituted bodies up to a depth limit;
//!   **recursive calls are rejected** with a diagnostic telling the user to
//!   apply the paper's stack transformation (Barnes-Hut style);
//! * callee restrictions: a single `return` as the last statement (or none
//!   for `void`); early returns are rejected.

use psa_cfront::ast::{Decl, Expr, Function, Program, Stmt};
use psa_cfront::diag::{Diagnostic, Span};
use std::collections::{BTreeMap, BTreeSet};

/// Maximum nesting of inlined bodies.
pub const MAX_INLINE_DEPTH: usize = 16;

/// Inline every user-function call reachable from `entry`, returning a new
/// program whose entry function is call-free (except the intrinsic
/// `malloc`/`free`/`printf` family).
pub fn inline_program(program: &Program, entry: &str) -> Result<Program, Diagnostic> {
    inline_program_keep(program, entry, &BTreeSet::new())
}

/// Like [`inline_program`], but calls to functions in `opaque` are left in
/// place — both in the entry body and inside the opaque bodies themselves,
/// which also get their *other* (inlinable) calls expanded. The lowering
/// summarizes the surviving calls; `lower_program` passes the recursive
/// functions here.
pub fn inline_program_keep(
    program: &Program,
    entry: &str,
    opaque: &BTreeSet<String>,
) -> Result<Program, Diagnostic> {
    let mut ctx = Inliner {
        program,
        counter: 0,
        opaque,
    };
    let mut out = program.clone();
    for name in std::iter::once(entry).chain(opaque.iter().map(|s| s.as_str())) {
        let f = program.function(name).ok_or_else(|| {
            Diagnostic::error(Span::SYNTH, format!("function `{name}` not found"))
        })?;
        let mut stack = vec![name.to_string()];
        let body = ctx.inline_block(&f.body, &mut stack, 0)?;
        let inlined = Function { body, ..f.clone() };
        if let Some(slot) = out.functions.iter_mut().find(|g| g.name == name) {
            *slot = inlined;
        }
    }
    Ok(out)
}

/// Functions treated as intrinsics (never inlined; the lowering handles
/// them).
fn is_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "malloc"
            | "calloc"
            | "free"
            | "printf"
            | "fprintf"
            | "puts"
            | "exit"
            | "srand"
            | "rand"
            | "assert"
            | "sqrt"
            | "fabs"
            | "abs"
    )
}

struct Inliner<'a> {
    program: &'a Program,
    counter: usize,
    /// Calls to these functions are kept for summary-based analysis.
    opaque: &'a BTreeSet<String>,
}

impl<'a> Inliner<'a> {
    fn inline_block(
        &mut self,
        stmts: &[Stmt],
        stack: &mut Vec<String>,
        depth: usize,
    ) -> Result<Vec<Stmt>, Diagnostic> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.inline_stmt(s, stack, depth, &mut out)?;
        }
        Ok(out)
    }

    fn inline_stmt(
        &mut self,
        s: &Stmt,
        stack: &mut Vec<String>,
        depth: usize,
        out: &mut Vec<Stmt>,
    ) -> Result<(), Diagnostic> {
        match s {
            // Call in statement position.
            Stmt::Expr(Expr::Call(name, args, span)) if self.inlinable(name) => {
                self.expand_call(name, args, None, *span, stack, depth, out)?;
            }
            // Call in assignment position: lhs = f(args).
            Stmt::Expr(Expr::Assign(lhs, rhs, span)) => {
                if let Expr::Call(name, args, _) = &**rhs {
                    if self.inlinable(name) {
                        self.expand_call(
                            name,
                            args,
                            Some((**lhs).clone()),
                            *span,
                            stack,
                            depth,
                            out,
                        )?;
                        return Ok(());
                    }
                }
                out.push(s.clone());
            }
            Stmt::Block(inner, span) => {
                let inlined = self.inline_block(inner, stack, depth)?;
                out.push(Stmt::Block(inlined, *span));
            }
            Stmt::If(c, t, e, span) => {
                let t2 = self.inline_one(t, stack, depth)?;
                let e2 = match e {
                    Some(e) => Some(Box::new(self.inline_one(e, stack, depth)?)),
                    None => None,
                };
                self.check_expr_callfree(c)?;
                out.push(Stmt::If(c.clone(), Box::new(t2), e2, *span));
            }
            Stmt::While(c, b, span) => {
                self.check_expr_callfree(c)?;
                let b2 = self.inline_one(b, stack, depth)?;
                out.push(Stmt::While(c.clone(), Box::new(b2), *span));
            }
            Stmt::DoWhile(b, c, span) => {
                self.check_expr_callfree(c)?;
                let b2 = self.inline_one(b, stack, depth)?;
                out.push(Stmt::DoWhile(Box::new(b2), c.clone(), *span));
            }
            Stmt::For(init, c, step, b, span) => {
                let init2 = match init {
                    Some(i) => Some(Box::new(self.inline_one(i, stack, depth)?)),
                    None => None,
                };
                if let Some(c) = c {
                    self.check_expr_callfree(c)?;
                }
                let b2 = self.inline_one(b, stack, depth)?;
                out.push(Stmt::For(
                    init2,
                    c.clone(),
                    step.clone(),
                    Box::new(b2),
                    *span,
                ));
            }
            Stmt::Decl(d) => {
                // An initializer that is a user call: split into decl + call.
                if let Some(Expr::Call(name, args, span)) = &d.init {
                    if self.inlinable(name) {
                        out.push(Stmt::Decl(Decl {
                            init: None,
                            ..d.clone()
                        }));
                        let lhs = Expr::Ident(d.name.clone(), d.span);
                        self.expand_call(name, args, Some(lhs), *span, stack, depth, out)?;
                        return Ok(());
                    }
                }
                out.push(s.clone());
            }
            other => out.push(other.clone()),
        }
        Ok(())
    }

    fn inline_one(
        &mut self,
        s: &Stmt,
        stack: &mut Vec<String>,
        depth: usize,
    ) -> Result<Stmt, Diagnostic> {
        let mut v = Vec::new();
        self.inline_stmt(s, stack, depth, &mut v)?;
        Ok(match v.len() {
            1 => v.pop().unwrap(),
            _ => Stmt::Block(v, s.span()),
        })
    }

    fn inlinable(&self, name: &str) -> bool {
        !is_intrinsic(name) && !self.opaque.contains(name) && self.program.function(name).is_some()
    }

    /// Conditions may not contain user calls (we would have to hoist them).
    fn check_expr_callfree(&self, e: &Expr) -> Result<(), Diagnostic> {
        let mut bad = None;
        walk_expr(e, &mut |x| {
            if let Expr::Call(name, _, span) = x {
                if self.inlinable(name) {
                    bad = Some((name.clone(), *span));
                }
            }
        });
        match bad {
            Some((name, span)) => Err(Diagnostic::error(
                span,
                format!(
                    "call to `{name}` inside a condition cannot be inlined; \
                     hoist it into a statement"
                ),
            )),
            None => Ok(()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_call(
        &mut self,
        name: &str,
        args: &[Expr],
        target: Option<Expr>,
        span: Span,
        stack: &mut Vec<String>,
        depth: usize,
        out: &mut Vec<Stmt>,
    ) -> Result<(), Diagnostic> {
        if depth >= MAX_INLINE_DEPTH {
            return Err(Diagnostic::error(
                span,
                format!("inline depth limit reached at call to `{name}`"),
            ));
        }
        if stack.iter().any(|s| s == name) {
            return Err(Diagnostic::error(
                span,
                format!(
                    "recursive call to `{name}` cannot be inlined; convert the \
                     recursion to a loop with an explicit stack (as the paper \
                     does for Barnes-Hut)"
                ),
            ));
        }
        let callee = self.program.function(name).expect("inlinable checked");
        if callee.params.len() != args.len() {
            return Err(Diagnostic::error(
                span,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    callee.params.len(),
                    args.len()
                ),
            ));
        }

        let k = self.counter;
        self.counter += 1;
        let rename = |n: &str| format!("__inl{k}_{n}");

        // Collect the callee's locally bound names (params + decls).
        let mut bound: BTreeMap<String, String> = BTreeMap::new();
        for p in &callee.params {
            bound.insert(p.name.clone(), rename(&p.name));
        }
        collect_decls(&callee.body, &mut |d: &Decl| {
            bound
                .entry(d.name.clone())
                .or_insert_with(|| rename(&d.name));
        });

        // Parameter locals + argument assignments.
        for (p, a) in callee.params.iter().zip(args) {
            self.check_expr_callfree(a)?;
            out.push(Stmt::Decl(Decl {
                name: bound[&p.name].clone(),
                ty: p.ty.clone(),
                init: Some(a.clone()),
                span,
            }));
        }

        // The body with renamed locals; the trailing return is split off.
        let mut body: Vec<Stmt> = callee.body.iter().map(|s| rename_stmt(s, &bound)).collect();
        let ret_expr = match body.last() {
            Some(Stmt::Return(e, _)) => {
                let e = e.clone();
                body.pop();
                e
            }
            _ => None,
        };
        if contains_return(&body) {
            return Err(Diagnostic::error(
                span,
                format!(
                    "`{name}` has an early return; only a single trailing \
                     `return` is supported by the inliner"
                ),
            ));
        }

        stack.push(name.to_string());
        let body = self.inline_block(&body, stack, depth + 1)?;
        stack.pop();
        // Splice the body directly (not as a `Block`): the return-value
        // assignment below references the callee's renamed locals, which a
        // block scope would hide. α-renaming already prevents collisions.
        out.extend(body);

        match (target, ret_expr) {
            (Some(lhs), Some(e)) => {
                out.push(Stmt::Expr(Expr::Assign(Box::new(lhs), Box::new(e), span)));
            }
            (Some(_), None) => {
                return Err(Diagnostic::error(
                    span,
                    format!("`{name}` returns no value but the result is used"),
                ));
            }
            (None, _) => {}
        }
        Ok(())
    }
}

/// Visit every expression node.
fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary(_, x, _) => walk_expr(x, f),
        Expr::Binary(_, a, b, _) | Expr::Assign(a, b, _) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Member(x, _, _, _) | Expr::Cast(_, x, _) => walk_expr(x, f),
        Expr::Call(_, args, _) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Cond(c, a, b, _) => {
            walk_expr(c, f);
            walk_expr(a, f);
            walk_expr(b, f);
        }
        _ => {}
    }
}

/// Visit every declaration in a statement list (all nesting levels).
fn collect_decls(stmts: &[Stmt], f: &mut impl FnMut(&Decl)) {
    for s in stmts {
        collect_decls_stmt(s, f);
    }
}

fn collect_decls_stmt(s: &Stmt, f: &mut impl FnMut(&Decl)) {
    match s {
        Stmt::Decl(d) => f(d),
        Stmt::Block(v, _) => collect_decls(v, f),
        Stmt::If(_, t, e, _) => {
            collect_decls_stmt(t, f);
            if let Some(e) = e {
                collect_decls_stmt(e, f);
            }
        }
        Stmt::While(_, b, _) | Stmt::DoWhile(b, _, _) => collect_decls_stmt(b, f),
        Stmt::For(init, _, _, b, _) => {
            if let Some(i) = init {
                collect_decls_stmt(i, f);
            }
            collect_decls_stmt(b, f);
        }
        _ => {}
    }
}

/// True if any (non-trailing) return remains.
fn contains_return(stmts: &[Stmt]) -> bool {
    let mut found = false;
    for s in stmts {
        stmt_has_return(s, &mut found);
    }
    found
}

fn stmt_has_return(s: &Stmt, found: &mut bool) {
    match s {
        Stmt::Return(_, _) => *found = true,
        Stmt::Block(v, _) => {
            for s in v {
                stmt_has_return(s, found);
            }
        }
        Stmt::If(_, t, e, _) => {
            stmt_has_return(t, found);
            if let Some(e) = e {
                stmt_has_return(e, found);
            }
        }
        Stmt::While(_, b, _) | Stmt::DoWhile(b, _, _) => stmt_has_return(b, found),
        Stmt::For(_, _, _, b, _) => stmt_has_return(b, found),
        _ => {}
    }
}

/// α-rename bound identifiers in a statement.
fn rename_stmt(s: &Stmt, bound: &BTreeMap<String, String>) -> Stmt {
    match s {
        Stmt::Decl(d) => Stmt::Decl(Decl {
            name: bound
                .get(&d.name)
                .cloned()
                .unwrap_or_else(|| d.name.clone()),
            ty: d.ty.clone(),
            init: d.init.as_ref().map(|e| rename_expr(e, bound)),
            span: d.span,
        }),
        Stmt::Expr(e) => Stmt::Expr(rename_expr(e, bound)),
        Stmt::Block(v, span) => {
            Stmt::Block(v.iter().map(|s| rename_stmt(s, bound)).collect(), *span)
        }
        Stmt::If(c, t, e, span) => Stmt::If(
            rename_expr(c, bound),
            Box::new(rename_stmt(t, bound)),
            e.as_ref().map(|e| Box::new(rename_stmt(e, bound))),
            *span,
        ),
        Stmt::While(c, b, span) => Stmt::While(
            rename_expr(c, bound),
            Box::new(rename_stmt(b, bound)),
            *span,
        ),
        Stmt::DoWhile(b, c, span) => Stmt::DoWhile(
            Box::new(rename_stmt(b, bound)),
            rename_expr(c, bound),
            *span,
        ),
        Stmt::For(init, c, step, b, span) => Stmt::For(
            init.as_ref().map(|i| Box::new(rename_stmt(i, bound))),
            c.as_ref().map(|c| rename_expr(c, bound)),
            step.as_ref().map(|s| rename_expr(s, bound)),
            Box::new(rename_stmt(b, bound)),
            *span,
        ),
        Stmt::Return(e, span) => Stmt::Return(e.as_ref().map(|e| rename_expr(e, bound)), *span),
        other => other.clone(),
    }
}

fn rename_expr(e: &Expr, bound: &BTreeMap<String, String>) -> Expr {
    match e {
        Expr::Ident(n, span) => match bound.get(n) {
            Some(r) => Expr::Ident(r.clone(), *span),
            None => e.clone(),
        },
        Expr::Unary(op, x, span) => Expr::Unary(*op, Box::new(rename_expr(x, bound)), *span),
        Expr::Binary(op, a, b, span) => Expr::Binary(
            *op,
            Box::new(rename_expr(a, bound)),
            Box::new(rename_expr(b, bound)),
            *span,
        ),
        Expr::Assign(a, b, span) => Expr::Assign(
            Box::new(rename_expr(a, bound)),
            Box::new(rename_expr(b, bound)),
            *span,
        ),
        Expr::Member(x, f, arrow, span) => {
            Expr::Member(Box::new(rename_expr(x, bound)), f.clone(), *arrow, *span)
        }
        Expr::Call(n, args, span) => Expr::Call(
            n.clone(),
            args.iter().map(|a| rename_expr(a, bound)).collect(),
            *span,
        ),
        Expr::Cast(t, x, span) => Expr::Cast(t.clone(), Box::new(rename_expr(x, bound)), *span),
        Expr::Cond(c, a, b, span) => Expr::Cond(
            Box::new(rename_expr(c, bound)),
            Box::new(rename_expr(a, bound)),
            Box::new(rename_expr(b, bound)),
            *span,
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_cfront::parse_and_type;

    fn inline_and_lower(src: &str) -> crate::FuncIr {
        let (p, t) = parse_and_type(src).unwrap();
        let p2 = inline_program(&p, "main").unwrap();
        crate::lower_main(&p2, &t).unwrap()
    }

    #[test]
    fn simple_void_call_inlines() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            struct node *list;
            void push(void) {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                list = p;
            }
            int main() {
                int i;
                list = NULL;
                for (i = 0; i < 5; i++) {
                    push();
                }
                return 0;
            }
        "#;
        let ir = inline_and_lower(src);
        // The inlined body's malloc/store/copy must be present.
        assert!(ir.num_ptr_stmts() >= 3);
        assert!(ir.pvar_id("__inl0_p").is_some(), "renamed local registered");
    }

    #[test]
    fn value_returning_call_inlines() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            struct node *mk(void) {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = NULL;
                return p;
            }
            int main() {
                struct node *a;
                struct node *b;
                a = mk();
                b = mk();
                a->nxt = b;
                return 0;
            }
        "#;
        let ir = inline_and_lower(src);
        // Two expansions: two renamed locals.
        assert!(ir.pvar_id("__inl0_p").is_some());
        assert!(ir.pvar_id("__inl1_p").is_some());
        // Shape analysis over the result: a -> b chain, unshared.
        let res = psa_core_check(&ir);
        assert!(res);
    }

    /// Minimal shape sanity without depending on psa-core (dev-dep cycle):
    /// just validate the IR.
    fn psa_core_check(ir: &crate::FuncIr) -> bool {
        ir.validate().is_ok()
    }

    #[test]
    fn parameters_are_passed() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            void link(struct node *a, struct node *b) {
                a->nxt = b;
            }
            int main() {
                struct node *x;
                struct node *y;
                x = (struct node *) malloc(sizeof(struct node));
                y = (struct node *) malloc(sizeof(struct node));
                link(x, y);
                return 0;
            }
        "#;
        let ir = inline_and_lower(src);
        // The param locals exist and a Store through the renamed param
        // exists.
        let a = ir.pvar_id("__inl0_a").expect("param local");
        let nxt = ir.types.selector_id("nxt").unwrap();
        assert!(ir.stmts.iter().any(|s| matches!(
            s.stmt,
            crate::Stmt::Ptr(crate::PtrStmt::Store(p, sel, _)) if p == a && sel == nxt
        )));
    }

    #[test]
    fn nested_calls_inline() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            struct node *mk(void) {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                return p;
            }
            struct node *mk2(void) {
                struct node *q;
                q = mk();
                q->nxt = NULL;
                return q;
            }
            int main() {
                struct node *a;
                a = mk2();
                return 0;
            }
        "#;
        let ir = inline_and_lower(src);
        assert!(ir.pvar_id("__inl0_q").is_some());
        assert!(ir.pvar_id("__inl1_p").is_some());
    }

    #[test]
    fn recursion_rejected_with_guidance() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            void walk(void) {
                walk();
            }
            int main() { walk(); return 0; }
        "#;
        let (p, _t) = parse_and_type(src).unwrap();
        let err = inline_program(&p, "main").unwrap_err();
        assert!(err.message.contains("recursive"));
        assert!(err.message.contains("stack"));
    }

    #[test]
    fn early_return_rejected() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int f(int c) {
                if (c > 0) { return 1; }
                return 0;
            }
            int main() { int x; x = f(3); return 0; }
        "#;
        let (p, _t) = parse_and_type(src).unwrap();
        assert!(inline_program(&p, "main").is_err());
    }

    #[test]
    fn call_in_condition_rejected() {
        let src = r#"
            int f(void) { return 1; }
            int main() { if (f() > 0) { return 1; } return 0; }
        "#;
        let (p, _t) = parse_and_type(src).unwrap();
        assert!(inline_program(&p, "main").is_err());
    }

    #[test]
    fn decl_initializer_call_inlines() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            struct node *mk(void) {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                return p;
            }
            int main() {
                struct node *a = mk();
                a->nxt = NULL;
                return 0;
            }
        "#;
        let ir = inline_and_lower(src);
        assert!(ir.pvar_id("a").is_some());
        assert!(ir.pvar_id("__inl0_p").is_some());
    }

    #[test]
    fn intrinsics_left_alone() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                free(p);
                printf("x");
                return 0;
            }
        "#;
        let (p, _t) = parse_and_type(src).unwrap();
        let p2 = inline_program(&p, "main").unwrap();
        // Unchanged body length (no expansion happened).
        assert_eq!(
            p.function("main").unwrap().body.len(),
            p2.function("main").unwrap().body.len()
        );
    }
}
