//! Lowering from the C AST to the normalized pointer IR.
//!
//! Every pointer effect is decomposed into the paper's six simple statements
//! with fresh temporaries for access chains (`x->a->b` becomes
//! `@t0 = x->a; ... @t0->b ...`). Temporaries are killed (`@t = NULL`)
//! immediately after the statement that consumes them so they never pollute
//! the SPATH / ALIAS properties of the shape graphs.
//!
//! Scalar computation lowers to [`Stmt::Scalar`] no-ops: reads of scalar
//! fields, arithmetic, `printf`/`free` calls. Conditions lower to
//! short-circuit branch chains whose leaves are [`Cond::PtrNull`],
//! [`Cond::PtrEq`] or [`Cond::Opaque`].

use crate::func::*;
use psa_cfront::ast::{self, BinOp, Expr, Stmt as AStmt, TypeExpr, UnOp};
use psa_cfront::diag::{Diagnostic, Span};
use psa_cfront::types::{SemType, StructId, TypeTable};
use std::collections::{BTreeMap, BTreeSet};

/// Errors produced during lowering.
pub type LowerError = Diagnostic;

/// Lower the `main` function of a program.
pub fn lower_main(program: &ast::Program, table: &TypeTable) -> Result<FuncIr, LowerError> {
    lower_function(program, table, "main")
}

/// Lower the named function of a program.
///
/// The analyzed function plays the role of a whole program after inlining
/// (which [`crate::lower_program`] performs automatically): it must not
/// receive pointer parameters, because the analysis starts from an empty
/// heap. Global pointer variables are registered as pvars; global
/// initializers run before the body.
pub fn lower_function(
    program: &ast::Program,
    table: &TypeTable,
    name: &str,
) -> Result<FuncIr, LowerError> {
    let func = program
        .function(name)
        .ok_or_else(|| Diagnostic::error(Span::SYNTH, format!("function `{name}` not found")))?;
    let mut lw = Lowerer::new(table.clone(), name.to_string());

    // Globals become top-level bindings.
    for g in &program.globals {
        lw.declare(&g.name, &g.ty, g.span)?;
    }
    for g in &program.globals {
        if let Some(init) = &g.init {
            let lhs = Expr::Ident(g.name.clone(), g.span);
            lw.lower_assign(&lhs, init, g.span)?;
            lw.flush_temps();
        }
    }

    for p in &func.params {
        let sem = table.resolve(&p.ty, func.span)?;
        if sem.pointee_struct().is_some() {
            return Err(Diagnostic::error(
                func.span,
                format!(
                    "function `{name}` takes pointer parameter `{}`; the analysis \
                     starts from an empty heap, so the entry function must not \
                     receive pointers (use `lower_program`, which inlines callers \
                     automatically and summarizes recursive ones)",
                    p.name
                ),
            ));
        }
        let tracked = matches!(sem, SemType::Int);
        lw.declare_scalar(&p.name, tracked);
    }

    lw.push_scope();
    for s in &func.body {
        lw.lower_stmt(s)?;
    }
    lw.pop_scope();
    lw.finish()
}

/// Lower a whole program rooted at `entry`, handling user function calls
/// automatically: non-recursive calls are inlined bottom-up over the call
/// graph (fresh renaming per call site), and functions on a call-graph
/// cycle are lowered as [`CalleeFunc`] bodies over a single shared
/// pvar/scalar universe, with their call sites becoming [`Stmt::Call`]
/// statements that the engine analyzes via entry/exit summaries.
///
/// With no recursion in sight this is exactly `inline_program` +
/// [`lower_function`] — bit-identical output to the manual pipeline.
pub fn lower_program(
    program: &ast::Program,
    table: &TypeTable,
    entry: &str,
) -> Result<FuncIr, LowerError> {
    let recursive = recursive_functions(program, entry);
    let inlined = crate::inline::inline_program_keep(program, entry, &recursive)?;
    if recursive.is_empty() {
        return lower_function(&inlined, table, entry);
    }
    // The localized call transfer strips every binding from the callee's
    // entry graph, which would make a global read inside a recursive callee
    // see NULL/unknown and a global write be lost at glue time. Refuse the
    // combination rather than analyze it wrong.
    for g in &inlined.globals {
        let sem = table.resolve(&g.ty, g.span)?;
        if sem.pointee_struct().is_some() || matches!(sem, SemType::Int) {
            return Err(Diagnostic::error(
                g.span,
                format!(
                    "global variable `{}` is not supported together with \
                     recursive functions (pass it as a parameter instead)",
                    g.name
                ),
            ));
        }
    }

    // --- pass 1: shared universe seeds — globals, then per-callee formals,
    // anchors and return slots, in sorted name order so ids are stable.
    let mut pvars: Vec<PvarInfo> = Vec::new();
    let mut scalars: Vec<String> = Vec::new();
    let mut globals: BTreeMap<String, Binding> = BTreeMap::new();
    for g in &inlined.globals {
        let sem = table.resolve(&g.ty, g.span)?;
        if let Some(sid) = sem.pointee_struct() {
            let id = PvarId(pvars.len() as u32);
            pvars.push(PvarInfo {
                name: g.name.clone(),
                pointee: sid,
                is_temp: false,
            });
            globals.insert(g.name.clone(), Binding::Ptr(id));
        } else if matches!(sem, SemType::Int) {
            let id = ScalarId(scalars.len() as u32);
            scalars.push(g.name.clone());
            globals.insert(g.name.clone(), Binding::Scalar(Some(id)));
        } else {
            globals.insert(g.name.clone(), Binding::Scalar(None));
        }
    }

    let names: Vec<String> = recursive.iter().cloned().collect();
    let mut sigs: BTreeMap<String, CallSig> = BTreeMap::new();
    let mut seeds: Vec<CalleeSeed> = Vec::new();
    for (index, name) in names.iter().enumerate() {
        let f = inlined.function(name).ok_or_else(|| {
            Diagnostic::error(Span::SYNTH, format!("function `{name}` not found"))
        })?;
        let mut params = Vec::new();
        let mut bindings = globals.clone();
        let mut params_ptr = Vec::new();
        let mut params_scalar = Vec::new();
        let first_pvar = pvars.len();
        let first_scalar = scalars.len();
        for p in &f.params {
            let sem = table.resolve(&p.ty, f.span)?;
            if let Some(sid) = sem.pointee_struct() {
                let id = PvarId(pvars.len() as u32);
                pvars.push(PvarInfo {
                    name: format!("{name}.{}", p.name),
                    pointee: sid,
                    is_temp: false,
                });
                bindings.insert(p.name.clone(), Binding::Ptr(id));
                params.push(CallParam::Ptr);
                params_ptr.push(id);
            } else if matches!(sem, SemType::Int) {
                let id = ScalarId(scalars.len() as u32);
                scalars.push(format!("{name}.{}", p.name));
                bindings.insert(p.name.clone(), Binding::Scalar(Some(id)));
                params.push(CallParam::Scalar(Some(id)));
                params_scalar.push(id);
            } else {
                bindings.insert(p.name.clone(), Binding::Scalar(None));
                params.push(CallParam::Scalar(None));
            }
        }
        // Anchors: one reserved, never-assigned pvar per pointer formal.
        let mut anchors = Vec::new();
        for (i, &p) in params_ptr.iter().enumerate() {
            let pointee = pvars[p.0 as usize].pointee;
            let id = PvarId(pvars.len() as u32);
            pvars.push(PvarInfo {
                name: format!("{name}.__anchor{i}"),
                pointee,
                is_temp: true,
            });
            anchors.push(id);
        }
        // Cutpoint anchors: a fixed supply of reserved slots for frame
        // references into the passed region beyond the argument targets.
        // The pointee is nominal — an anchored cell can be of any struct.
        let mut cut_anchors = Vec::new();
        let cut_pointee = params_ptr
            .first()
            .map(|&p| pvars[p.0 as usize].pointee)
            .unwrap_or(StructId(0));
        for j in 0..4 {
            let id = PvarId(pvars.len() as u32);
            pvars.push(PvarInfo {
                name: format!("{name}.__cut{j}"),
                pointee: cut_pointee,
                is_temp: true,
            });
            cut_anchors.push(id);
        }
        // Return slot.
        let ret_sem = table.resolve(&f.ret, f.span)?;
        let mut ret_ptr = None;
        let mut ret_scalar = None;
        if let Some(sid) = ret_sem.pointee_struct() {
            let id = PvarId(pvars.len() as u32);
            pvars.push(PvarInfo {
                name: format!("{name}.__ret"),
                pointee: sid,
                is_temp: false,
            });
            ret_ptr = Some((id, sid));
        } else if matches!(ret_sem, SemType::Int) {
            let id = ScalarId(scalars.len() as u32);
            scalars.push(format!("{name}.__ret"));
            ret_scalar = Some(id);
        }
        sigs.insert(
            name.clone(),
            CallSig {
                index: index as u32,
                params,
                ret_ptr,
                ret_scalar,
            },
        );
        seeds.push(CalleeSeed {
            name: name.clone(),
            bindings,
            params_ptr,
            params_scalar,
            anchors,
            cut_anchors,
            ret_ptr: ret_ptr.map(|(id, _)| id),
            ret_scalar,
            first_pvar,
            first_scalar,
        });
    }

    // --- pass 2: lower each recursive body over the growing shared tables.
    let mut callee_irs: Vec<FuncIr> = Vec::new();
    let mut owned: Vec<(Vec<PvarId>, Vec<ScalarId>)> = Vec::new();
    for seed in &seeds {
        let f = inlined.function(&seed.name).expect("checked in pass 1");
        let mut lw = Lowerer::new_seeded(
            table.clone(),
            seed.name.clone(),
            std::mem::take(&mut pvars),
            std::mem::take(&mut scalars),
            seed.bindings.clone(),
            sigs.clone(),
            format!("{}.", seed.name),
            seed.ret_ptr,
            seed.ret_scalar,
        );
        let body_start_pvar = lw.pvars.len();
        let body_start_scalar = lw.scalars.len();
        lw.push_scope();
        for s in &f.body {
            lw.lower_stmt(s)?;
        }
        lw.pop_scope();
        let ir = lw.finish()?;
        // Owned slots: formals + anchors + return slot registered in pass 1
        // (the contiguous range starting at the seed's watermark) plus body
        // locals and temps (the range this lowering appended).
        let mut own_p: Vec<PvarId> = (seed.first_pvar..body_start_pvar)
            .chain(body_start_pvar..ir.pvars.len())
            .map(|i| PvarId(i as u32))
            .collect();
        // Pass-1 ranges for later callees interleave; restrict to this
        // callee's own seeds.
        own_p.retain(|&p| {
            let n = &ir.pvars[p.0 as usize].name;
            n.starts_with(&format!("{}.", seed.name)) || p.0 as usize >= body_start_pvar
        });
        let mut own_s: Vec<ScalarId> = (seed.first_scalar..body_start_scalar)
            .chain(body_start_scalar..ir.scalars.len())
            .map(|i| ScalarId(i as u32))
            .collect();
        own_s.retain(|&s| {
            let n = &ir.scalars[s.0 as usize];
            n.starts_with(&format!("{}.", seed.name)) || s.0 as usize >= body_start_scalar
        });
        pvars = ir.pvars.clone();
        scalars = ir.scalars.clone();
        owned.push((own_p, own_s));
        callee_irs.push(ir);
    }

    // --- pass 3: the root, over the final callee tables.
    let mut lw = Lowerer::new_seeded(
        table.clone(),
        entry.to_string(),
        pvars,
        scalars,
        globals,
        sigs.clone(),
        String::new(),
        None,
        None,
    );
    let func = inlined
        .function(entry)
        .ok_or_else(|| Diagnostic::error(Span::SYNTH, format!("function `{entry}` not found")))?;
    for g in &inlined.globals {
        if let Some(init) = &g.init {
            let lhs = Expr::Ident(g.name.clone(), g.span);
            lw.lower_assign(&lhs, init, g.span)?;
            lw.flush_temps();
        }
    }
    for p in &func.params {
        let sem = table.resolve(&p.ty, func.span)?;
        if sem.pointee_struct().is_some() {
            return Err(Diagnostic::error(
                func.span,
                format!(
                    "entry function `{entry}` takes pointer parameter `{}`; the \
                     analysis starts from an empty heap",
                    p.name
                ),
            ));
        }
        let tracked = matches!(sem, SemType::Int);
        lw.declare_scalar(&p.name, tracked);
    }
    lw.push_scope();
    for s in &func.body {
        lw.lower_stmt(s)?;
    }
    lw.pop_scope();
    let mut root = lw.finish()?;

    // --- pass 4: every FuncIr carries the final full tables, and callees
    // get their metadata (body hash, transitive may-free).
    let final_pvars = root.pvars.clone();
    let final_scalars = root.scalars.clone();
    let mut callees: Vec<CalleeFunc> = Vec::new();
    for (i, mut ir) in callee_irs.into_iter().enumerate() {
        ir.pvars = final_pvars.clone();
        ir.scalars = final_scalars.clone();
        let body_hash = body_hash(&ir);
        let (owned_pvars, owned_scalars) = owned[i].clone();
        let seed = &seeds[i];
        callees.push(CalleeFunc {
            name: seed.name.clone(),
            ir,
            params_ptr: seed.params_ptr.clone(),
            params_scalar: seed.params_scalar.clone(),
            anchors: seed.anchors.clone(),
            cut_anchors: seed.cut_anchors.clone(),
            ret_ptr: seed.ret_ptr,
            ret_scalar: seed.ret_scalar,
            owned_pvars,
            owned_scalars,
            may_free: false,
            body_hash,
        });
    }
    // Transitive may-free over the callee call graph.
    let direct_free: Vec<bool> = callees
        .iter()
        .map(|c| c.ir.stmts.iter().any(|s| matches!(s.stmt, Stmt::Free(_))))
        .collect();
    let calls_of: Vec<Vec<u32>> = callees
        .iter()
        .map(|c| {
            c.ir.stmts
                .iter()
                .filter_map(|s| match &s.stmt {
                    Stmt::Call(cs) => Some(cs.callee),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let mut may_free = direct_free;
    loop {
        let mut changed = false;
        for i in 0..callees.len() {
            if !may_free[i] && calls_of[i].iter().any(|&j| may_free[j as usize]) {
                may_free[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (c, f) in callees.iter_mut().zip(may_free) {
        c.may_free = f;
    }
    root.callees = callees;
    Ok(root)
}

/// FNV-1a hash of a callee body's structural content, for the summary
/// cache key.
fn body_hash(ir: &FuncIr) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(ir.name.as_bytes());
    for s in &ir.stmts {
        eat(format!("{:?}", s.stmt).as_bytes());
    }
    for b in &ir.blocks {
        eat(format!("{:?}", b).as_bytes());
    }
    h
}

/// The user functions reachable from `entry` that sit on a call-graph
/// cycle (self- or mutual recursion); these cannot be inlined and get
/// summary-based analysis instead.
fn recursive_functions(program: &ast::Program, entry: &str) -> BTreeSet<String> {
    // Direct-call edges among defined functions.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &program.functions {
        let mut callees = BTreeSet::new();
        collect_calls(&f.body, &mut |name| {
            if program.function(name).is_some() {
                callees.insert(name.to_string());
            }
        });
        edges.insert(f.name.clone(), callees);
    }
    // Reachable set from entry.
    let mut reach: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec![entry.to_string()];
    while let Some(n) = stack.pop() {
        if !reach.insert(n.clone()) {
            continue;
        }
        if let Some(cs) = edges.get(&n) {
            stack.extend(cs.iter().cloned());
        }
    }
    // A function is recursive iff it can reach itself.
    let mut out = BTreeSet::new();
    for f in &reach {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = edges
            .get(f)
            .map(|cs| cs.iter().map(|s| s.as_str()).collect())
            .unwrap_or_default();
        while let Some(n) = stack.pop() {
            if n == f {
                out.insert(f.clone());
                break;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(cs) = edges.get(n) {
                stack.extend(cs.iter().map(|s| s.as_str()));
            }
        }
    }
    out
}

/// Visit every call name in a statement list.
fn collect_calls(stmts: &[AStmt], f: &mut impl FnMut(&str)) {
    for s in stmts {
        collect_calls_stmt(s, f);
    }
}

fn collect_calls_stmt(s: &AStmt, f: &mut impl FnMut(&str)) {
    match s {
        AStmt::Decl(d) => {
            if let Some(e) = &d.init {
                walk_calls(e, f);
            }
        }
        AStmt::Expr(e) => walk_calls(e, f),
        AStmt::Block(v, _) => collect_calls(v, f),
        AStmt::If(c, t, e, _) => {
            walk_calls(c, f);
            collect_calls_stmt(t, f);
            if let Some(e) = e {
                collect_calls_stmt(e, f);
            }
        }
        AStmt::While(c, b, _) => {
            walk_calls(c, f);
            collect_calls_stmt(b, f);
        }
        AStmt::DoWhile(b, c, _) => {
            collect_calls_stmt(b, f);
            walk_calls(c, f);
        }
        AStmt::For(init, c, step, b, _) => {
            if let Some(i) = init {
                collect_calls_stmt(i, f);
            }
            if let Some(c) = c {
                walk_calls(c, f);
            }
            if let Some(s) = step {
                walk_calls(s, f);
            }
            collect_calls_stmt(b, f);
        }
        AStmt::Switch(scrut, arms, _) => {
            walk_calls(scrut, f);
            for (_, body) in arms {
                collect_calls(body, f);
            }
        }
        AStmt::Return(Some(e), _) => walk_calls(e, f),
        _ => {}
    }
}

fn walk_calls(e: &Expr, f: &mut impl FnMut(&str)) {
    if let Expr::Call(name, _, _) = e {
        f(name);
    }
    match e {
        Expr::Unary(_, x, _) | Expr::Member(x, _, _, _) | Expr::Cast(_, x, _) => walk_calls(x, f),
        Expr::Binary(_, a, b, _) | Expr::Assign(a, b, _) => {
            walk_calls(a, f);
            walk_calls(b, f);
        }
        Expr::Call(_, args, _) => {
            for a in args {
                walk_calls(a, f);
            }
        }
        Expr::Cond(c, a, b, _) => {
            walk_calls(c, f);
            walk_calls(a, f);
            walk_calls(b, f);
        }
        _ => {}
    }
}

/// Signature of a summarized (recursive) callee, known to every lowerer.
#[derive(Debug, Clone)]
struct CallSig {
    /// Index into the root's callee table.
    index: u32,
    /// Formals in declaration order.
    params: Vec<CallParam>,
    /// Pointer-return slot and its pointee type.
    ret_ptr: Option<(PvarId, StructId)>,
    /// Scalar-return slot.
    ret_scalar: Option<ScalarId>,
}

#[derive(Debug, Clone, Copy)]
enum CallParam {
    Ptr,
    /// `Some` for tracked int formals.
    Scalar(Option<ScalarId>),
}

/// Pre-registered identity of one recursive callee (pass 1 output).
struct CalleeSeed {
    name: String,
    bindings: BTreeMap<String, Binding>,
    params_ptr: Vec<PvarId>,
    params_scalar: Vec<ScalarId>,
    anchors: Vec<PvarId>,
    cut_anchors: Vec<PvarId>,
    ret_ptr: Option<PvarId>,
    ret_scalar: Option<ScalarId>,
    first_pvar: usize,
    first_scalar: usize,
}

/// Name binding in the current scopes.
#[derive(Clone, Copy)]
enum Binding {
    Ptr(PvarId),
    /// A scalar variable; `Some` when it is a tracked int (flag) variable.
    Scalar(Option<ScalarId>),
}

struct LoopCtx {
    id: LoopId,
    /// Target of `continue`.
    continue_bb: BlockId,
    /// Target of `break`.
    break_bb: BlockId,
}

struct Lowerer {
    table: TypeTable,
    name: String,
    pvars: Vec<PvarInfo>,
    scalars: Vec<String>,
    scopes: Vec<BTreeMap<String, Binding>>,
    stmts: Vec<StmtInfo>,
    blocks: Vec<Block>,
    cur: BlockId,
    /// True once the current block got its terminator (code after `return`).
    sealed: bool,
    loops: Vec<LoopInfo>,
    loop_stack: Vec<LoopCtx>,
    exit_edges: BTreeMap<(BlockId, BlockId), Vec<LoopId>>,
    entry_edges: BTreeMap<(BlockId, BlockId), Vec<LoopId>>,
    temp_counter: u32,
    /// Temps created while lowering the current source statement; killed
    /// right after it.
    pending_temps: Vec<PvarId>,
    /// Prefix for names this lowerer introduces (`"{func}."` for recursive
    /// callee bodies sharing the root's tables, empty for the root).
    prefix: String,
    /// Signatures of summarized (recursive) callees visible at call sites.
    call_sigs: BTreeMap<String, CallSig>,
    /// Where `return e;` stores a pointer result, in callee mode.
    ret_ptr_slot: Option<PvarId>,
    /// Where `return e;` stores a tracked-int result, in callee mode.
    ret_scalar_slot: Option<ScalarId>,
}

impl Lowerer {
    fn new(table: TypeTable, name: String) -> Self {
        let entry = Block {
            stmts: Vec::new(),
            term: Terminator::Return,
        };
        Lowerer {
            table,
            name,
            pvars: Vec::new(),
            scalars: Vec::new(),
            scopes: vec![BTreeMap::new()],
            stmts: Vec::new(),
            blocks: vec![entry],
            cur: BlockId(0),
            sealed: false,
            loops: Vec::new(),
            loop_stack: Vec::new(),
            exit_edges: BTreeMap::new(),
            entry_edges: BTreeMap::new(),
            temp_counter: 0,
            pending_temps: Vec::new(),
            prefix: String::new(),
            call_sigs: BTreeMap::new(),
            ret_ptr_slot: None,
            ret_scalar_slot: None,
        }
    }

    /// A lowerer over a pre-seeded shared universe: the pvar/scalar tables
    /// carry earlier registrations (globals, callee formals, anchors, return
    /// slots, previously lowered callee locals) and `bindings` maps source
    /// names visible in this function to them.
    #[allow(clippy::too_many_arguments)]
    fn new_seeded(
        table: TypeTable,
        name: String,
        pvars: Vec<PvarInfo>,
        scalars: Vec<String>,
        bindings: BTreeMap<String, Binding>,
        call_sigs: BTreeMap<String, CallSig>,
        prefix: String,
        ret_ptr_slot: Option<PvarId>,
        ret_scalar_slot: Option<ScalarId>,
    ) -> Self {
        let mut lw = Lowerer::new(table, name);
        lw.pvars = pvars;
        lw.scalars = scalars;
        lw.scopes = vec![bindings];
        lw.call_sigs = call_sigs;
        lw.prefix = prefix;
        lw.ret_ptr_slot = ret_ptr_slot;
        lw.ret_scalar_slot = ret_scalar_slot;
        lw
    }

    // ------------------------------------------------------------- plumbing

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            stmts: Vec::new(),
            term: Terminator::Return,
        });
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.sealed = false;
    }

    fn seal(&mut self, term: Terminator) {
        if !self.sealed {
            self.blocks[self.cur.0 as usize].term = term;
            self.sealed = true;
        }
    }

    fn emit(&mut self, stmt: Stmt, span: Span) {
        if self.sealed {
            return; // unreachable code after return/break
        }
        let id = StmtId(self.stmts.len() as u32);
        let loops = self.loop_stack.iter().map(|l| l.id).collect();
        self.stmts.push(StmtInfo { stmt, span, loops });
        self.blocks[self.cur.0 as usize].stmts.push(id);
    }

    fn emit_ptr(&mut self, stmt: PtrStmt, span: Span) {
        self.emit(Stmt::Ptr(stmt), span);
    }

    fn push_scope(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        None
    }

    fn fresh_pvar(&mut self, name: String, pointee: StructId, is_temp: bool) -> PvarId {
        let id = PvarId(self.pvars.len() as u32);
        self.pvars.push(PvarInfo {
            name,
            pointee,
            is_temp,
        });
        id
    }

    fn fresh_temp(&mut self, pointee: StructId) -> PvarId {
        let n = self.temp_counter;
        self.temp_counter += 1;
        let id = self.fresh_pvar(format!("{}@t{n}", self.prefix), pointee, true);
        self.pending_temps.push(id);
        id
    }

    /// Kill (NULL-assign) all temps created for the current source statement.
    fn flush_temps(&mut self) {
        let temps = std::mem::take(&mut self.pending_temps);
        for t in temps.into_iter().rev() {
            self.emit_ptr(PtrStmt::Nil(t), Span::SYNTH);
        }
    }

    /// Take the pending temps without killing them; callers kill them in
    /// specific successor blocks (branch conditions).
    fn take_temps(&mut self) -> Vec<PvarId> {
        std::mem::take(&mut self.pending_temps)
    }

    fn kill_temps_in(&mut self, block: BlockId, temps: &[PvarId]) {
        let saved = self.cur;
        let sealed = self.sealed;
        self.cur = block;
        self.sealed = false;
        for &t in temps.iter().rev() {
            self.emit_ptr(PtrStmt::Nil(t), Span::SYNTH);
        }
        self.cur = saved;
        self.sealed = sealed;
    }

    /// Record that edge `from -> to` exits every loop from the innermost one
    /// down to (and including) stack index `upto`.
    fn record_exit(&mut self, from: BlockId, to: BlockId, upto: usize) {
        let exited: Vec<LoopId> = self.loop_stack[upto..].iter().rev().map(|l| l.id).collect();
        if !exited.is_empty() {
            self.exit_edges
                .entry((from, to))
                .or_default()
                .extend(exited);
            let e = self.exit_edges.get_mut(&(from, to)).unwrap();
            e.sort_unstable();
            e.dedup();
        }
    }

    // --------------------------------------------------------- declarations

    fn declare(&mut self, name: &str, ty: &TypeExpr, span: Span) -> Result<(), Diagnostic> {
        let sem = self.table.resolve(ty, span)?;
        match &sem {
            SemType::Pointer(_) => {
                if let Some(sid) = sem.pointee_struct() {
                    let base = format!("{}{name}", self.prefix);
                    let unique = if self.lookup(name).is_some() {
                        format!("{base}#{}", self.pvars.len())
                    } else {
                        base
                    };
                    let id = self.fresh_pvar(unique, sid, false);
                    self.scopes
                        .last_mut()
                        .unwrap()
                        .insert(name.to_string(), Binding::Ptr(id));
                } else {
                    // Pointers to scalars (int*, double*) carry no shape;
                    // they are untracked scalars.
                    self.declare_scalar(name, false);
                }
            }
            SemType::Struct(_) => {
                return Err(Diagnostic::error(
                    span,
                    format!(
                        "`{name}` is a struct value; only pointers to structs and \
                         scalars are supported"
                    ),
                ));
            }
            SemType::Int => self.declare_scalar(name, true),
            _ => self.declare_scalar(name, false),
        }
        Ok(())
    }

    /// Register a scalar variable; tracked ints get a [`ScalarId`] so flag
    /// assignments and tests can be propagated by the analysis.
    fn declare_scalar(&mut self, name: &str, tracked: bool) {
        let id = if tracked {
            let id = ScalarId(self.scalars.len() as u32);
            self.scalars.push(format!("{}{name}", self.prefix));
            Some(id)
        } else {
            None
        };
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), Binding::Scalar(id));
    }

    // ----------------------------------------------------------- statements

    fn lower_stmt(&mut self, s: &AStmt) -> Result<(), Diagnostic> {
        match s {
            AStmt::Decl(d) => {
                self.declare(&d.name, &d.ty, d.span)?;
                if let Some(init) = &d.init {
                    let lhs = Expr::Ident(d.name.clone(), d.span);
                    self.lower_assign(&lhs, init, d.span)?;
                    self.flush_temps();
                }
                Ok(())
            }
            AStmt::Expr(e) => {
                self.lower_expr_stmt(e)?;
                self.flush_temps();
                Ok(())
            }
            AStmt::Block(stmts, _) => {
                self.push_scope();
                for st in stmts {
                    self.lower_stmt(st)?;
                }
                self.pop_scope();
                Ok(())
            }
            AStmt::Empty(_) => Ok(()),
            AStmt::If(cond, then, els, _) => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.lower_cond(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.lower_stmt(then)?;
                self.seal(Terminator::Goto(join_bb));
                self.switch_to(else_bb);
                if let Some(e) = els {
                    self.lower_stmt(e)?;
                }
                self.seal(Terminator::Goto(join_bb));
                self.switch_to(join_bb);
                Ok(())
            }
            AStmt::While(cond, body, _) => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let after = self.new_block();
                let pre = self.cur;
                self.seal(Terminator::Goto(header));
                let lid = self.begin_loop(header, header, after);
                self.entry_edges.entry((pre, header)).or_default().push(lid);
                self.switch_to(header);
                self.lower_cond_with_exits(cond, body_bb, after)?;
                self.switch_to(body_bb);
                self.lower_stmt(body)?;
                self.seal(Terminator::Goto(header));
                self.end_loop(lid);
                self.switch_to(after);
                Ok(())
            }
            AStmt::DoWhile(body, cond, _) => {
                let body_bb = self.new_block();
                let cond_bb = self.new_block();
                let after = self.new_block();
                let pre = self.cur;
                self.seal(Terminator::Goto(body_bb));
                let lid = self.begin_loop(cond_bb, cond_bb, after);
                self.entry_edges
                    .entry((pre, body_bb))
                    .or_default()
                    .push(lid);
                self.switch_to(body_bb);
                self.lower_stmt(body)?;
                self.seal(Terminator::Goto(cond_bb));
                self.switch_to(cond_bb);
                self.lower_cond_with_exits(cond, body_bb, after)?;
                self.end_loop(lid);
                self.switch_to(after);
                Ok(())
            }
            AStmt::For(init, cond, step, body, _) => {
                self.push_scope();
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let after = self.new_block();
                let pre = self.cur;
                self.seal(Terminator::Goto(header));
                let lid = self.begin_loop(header, step_bb, after);
                self.entry_edges.entry((pre, header)).or_default().push(lid);
                self.switch_to(header);
                match cond {
                    Some(c) => self.lower_cond_with_exits(c, body_bb, after)?,
                    None => self.seal(Terminator::Goto(body_bb)),
                }
                self.switch_to(body_bb);
                self.lower_stmt(body)?;
                self.seal(Terminator::Goto(step_bb));
                self.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_expr_stmt(st)?;
                    self.flush_temps();
                }
                self.seal(Terminator::Goto(header));
                self.end_loop(lid);
                self.pop_scope();
                self.switch_to(after);
                Ok(())
            }
            AStmt::Switch(scrutinee, arms, span) => {
                // Lower to an if/else chain on equality tests; tracked
                // scalars get precise ScalarEq refinement for free.
                let join = self.new_block();
                for (label, body) in arms {
                    match label {
                        Some(k) => {
                            let arm_bb = self.new_block();
                            let next_bb = self.new_block();
                            let test = Expr::Binary(
                                psa_cfront::ast::BinOp::Eq,
                                Box::new(scrutinee.clone()),
                                Box::new(Expr::IntLit(*k, *span)),
                                *span,
                            );
                            self.lower_cond(&test, arm_bb, next_bb)?;
                            self.switch_to(arm_bb);
                            self.push_scope();
                            for st in body {
                                self.lower_stmt(st)?;
                            }
                            self.pop_scope();
                            self.seal(Terminator::Goto(join));
                            self.switch_to(next_bb);
                        }
                        None => {
                            self.push_scope();
                            for st in body {
                                self.lower_stmt(st)?;
                            }
                            self.pop_scope();
                        }
                    }
                }
                self.seal(Terminator::Goto(join));
                self.switch_to(join);
                Ok(())
            }
            AStmt::Return(val, span) => {
                if let Some(e) = val {
                    if let Some(slot) = self.ret_ptr_slot {
                        self.lower_ptr_assign_to_var(slot, e, *span)?;
                        self.flush_temps();
                    } else if let Some(slot) = self.ret_scalar_slot {
                        match e {
                            Expr::IntLit(v, _) => self.emit(Stmt::ScalarConst(slot, *v), *span),
                            Expr::Call(cname, cargs, sp)
                                if self.call_sigs.contains_key(cname.as_str()) =>
                            {
                                let dest = self.call_sigs[cname.as_str()].ret_scalar.map(|_| slot);
                                self.emit_call(cname, cargs, None, dest, *sp)?;
                                self.flush_temps();
                                if dest.is_none() {
                                    self.emit(
                                        Stmt::ScalarHavoc(slot, format!("return {cname}(...)")),
                                        *span,
                                    );
                                }
                            }
                            _ => {
                                self.check_no_user_call(e)?;
                                self.emit(
                                    Stmt::ScalarHavoc(slot, format!("return {}", short_desc(e))),
                                    *span,
                                );
                            }
                        }
                    } else {
                        // Root function: the returned value is unobserved, but
                        // calls inside it would have heap effects we must not
                        // drop silently.
                        self.check_no_user_call(e)?;
                    }
                }
                self.seal(Terminator::Return);
                Ok(())
            }
            AStmt::Break(span) => {
                let Some(top) = self.loop_stack.last() else {
                    return Err(Diagnostic::error(*span, "`break` outside of a loop"));
                };
                let target = top.break_bb;
                let from = self.cur;
                if !self.sealed {
                    self.record_exit(from, target, self.loop_stack.len() - 1);
                }
                self.seal(Terminator::Goto(target));
                Ok(())
            }
            AStmt::Continue(span) => {
                let Some(top) = self.loop_stack.last() else {
                    return Err(Diagnostic::error(*span, "`continue` outside of a loop"));
                };
                let target = top.continue_bb;
                self.seal(Terminator::Goto(target));
                Ok(())
            }
        }
    }

    fn begin_loop(&mut self, header: BlockId, continue_bb: BlockId, break_bb: BlockId) -> LoopId {
        let id = LoopId(self.loops.len() as u32);
        let parent = self.loop_stack.last().map(|l| l.id);
        let depth = self.loop_stack.len() as u32;
        self.loops.push(LoopInfo {
            parent,
            header,
            ipvars: Vec::new(),
            depth,
        });
        self.loop_stack.push(LoopCtx {
            id,
            continue_bb,
            break_bb,
        });
        id
    }

    fn end_loop(&mut self, id: LoopId) {
        let popped = self.loop_stack.pop().expect("loop stack underflow");
        debug_assert_eq!(popped.id, id);
    }

    /// Lower a loop condition; edges to `exit_bb` are loop-exit edges.
    fn lower_cond_with_exits(
        &mut self,
        cond: &Expr,
        body_bb: BlockId,
        exit_bb: BlockId,
    ) -> Result<(), Diagnostic> {
        let upto = self.loop_stack.len() - 1;
        self.lower_cond(cond, body_bb, exit_bb)?;
        // `exit_bb` was freshly created by the loop lowering, so every edge
        // targeting it at this point was produced by this condition and
        // leaves the loop.
        let sources: Vec<BlockId> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.term.successors().contains(&exit_bb))
            .map(|(i, _)| BlockId(i as u32))
            .collect();
        for from in sources {
            self.record_exit(from, exit_bb, upto);
        }
        Ok(())
    }

    // ----------------------------------------------------------- conditions

    /// Lower `cond`, branching to `t` when true and `f` when false.
    fn lower_cond(&mut self, cond: &Expr, t: BlockId, f: BlockId) -> Result<(), Diagnostic> {
        // Calls to summarized functions may mutate the heap; hiding one
        // inside a (possibly re-evaluated, possibly opaque) condition would
        // drop those effects, so require it to be hoisted.
        if let Some(n) = self.first_user_call(cond) {
            return Err(Diagnostic::error(
                cond.span(),
                format!(
                    "call to `{n}` inside a condition cannot be summarized; \
                     assign its result to a variable and test that"
                ),
            ));
        }
        match cond {
            Expr::Binary(BinOp::And, a, b, _) => {
                let mid = self.new_block();
                self.lower_cond(a, mid, f)?;
                self.switch_to(mid);
                self.lower_cond(b, t, f)
            }
            Expr::Binary(BinOp::Or, a, b, _) => {
                let mid = self.new_block();
                self.lower_cond(a, t, mid)?;
                self.switch_to(mid);
                self.lower_cond(b, t, f)
            }
            Expr::Unary(UnOp::Not, inner, _) => self.lower_cond(inner, f, t),
            Expr::Binary(op @ (BinOp::Eq | BinOp::Ne), a, b, span) => {
                let a_ptr = self.is_pointerish(a);
                let b_ptr = self.is_pointerish(b);
                if a_ptr || b_ptr {
                    let oa = self.lower_ptr_operand(a, *span)?;
                    let ob = self.lower_ptr_operand(b, *span)?;
                    let leaf = match (oa, ob) {
                        (Operand::Null, Operand::Null) => {
                            // NULL == NULL: constant.
                            let always = *op == BinOp::Eq;
                            self.finish_leaf_const(always, t, f);
                            return Ok(());
                        }
                        (Operand::Pvar(p), Operand::Null) | (Operand::Null, Operand::Pvar(p)) => {
                            Cond::PtrNull(p)
                        }
                        (Operand::Pvar(p), Operand::Pvar(q)) => Cond::PtrEq(p, q),
                    };
                    let (tt, ff) = if *op == BinOp::Eq { (t, f) } else { (f, t) };
                    self.finish_leaf(leaf, tt, ff);
                    Ok(())
                } else if let Some(leaf) = self.scalar_eq_leaf(a, b) {
                    // Tracked-flag test: `done == 0`, `0 != done`, …
                    let (tt, ff) = if *op == BinOp::Eq { (t, f) } else { (f, t) };
                    self.finish_leaf(leaf, tt, ff);
                    Ok(())
                } else {
                    self.finish_leaf(Cond::Opaque, t, f);
                    Ok(())
                }
            }
            Expr::Ident(name, _) if matches!(self.lookup(name), Some(Binding::Ptr(_))) => {
                // `while (p)` — true means non-NULL.
                let Some(Binding::Ptr(p)) = self.lookup(name) else {
                    unreachable!()
                };
                self.finish_leaf(Cond::PtrNull(p), f, t);
                Ok(())
            }
            Expr::Member(..) if self.is_pointerish(cond) => {
                // `while (p->nxt)` — materialize the chain, test non-NULL.
                let op = self.lower_ptr_operand(cond, cond.span())?;
                match op {
                    Operand::Pvar(p) => {
                        self.finish_leaf(Cond::PtrNull(p), f, t);
                        Ok(())
                    }
                    Operand::Null => {
                        self.finish_leaf_const(false, t, f);
                        Ok(())
                    }
                }
            }
            _ => {
                // Scalar condition: no refinement.
                self.finish_leaf(Cond::Opaque, t, f);
                Ok(())
            }
        }
    }

    /// `v == lit` / `lit == v` on a tracked scalar, if recognizable.
    fn scalar_eq_leaf(&self, a: &Expr, b: &Expr) -> Option<Cond> {
        let (name, lit) = match (a, b) {
            (Expr::Ident(n, _), Expr::IntLit(v, _)) => (n, *v),
            (Expr::IntLit(v, _), Expr::Ident(n, _)) => (n, *v),
            _ => return None,
        };
        match self.lookup(name) {
            Some(Binding::Scalar(Some(id))) => Some(Cond::ScalarEq(id, lit)),
            _ => None,
        }
    }

    fn finish_leaf(&mut self, cond: Cond, t: BlockId, f: BlockId) {
        let temps = self.take_temps();
        self.seal(Terminator::Branch {
            cond,
            then_bb: t,
            else_bb: f,
        });
        // Kill condition temps on both outgoing paths; `Nil` on an unbound
        // temp is a no-op, so shared targets are safe.
        if !temps.is_empty() {
            self.kill_temps_in(t, &temps);
            self.kill_temps_in(f, &temps);
        }
    }

    fn finish_leaf_const(&mut self, value: bool, t: BlockId, f: BlockId) {
        let temps = self.take_temps();
        let target = if value { t } else { f };
        self.seal(Terminator::Goto(target));
        if !temps.is_empty() {
            self.kill_temps_in(target, &temps);
        }
    }

    // ---------------------------------------------------------- expressions

    /// Lower an expression in statement position.
    fn lower_expr_stmt(&mut self, e: &Expr) -> Result<(), Diagnostic> {
        match e {
            Expr::Assign(lhs, rhs, span) => self.lower_assign(lhs, rhs, *span),
            Expr::Call(name, args, span) => self.lower_call(name, args, *span).map(|_| ()),
            _ => {
                self.check_no_user_call(e)?;
                self.emit(Stmt::Scalar(short_desc(e)), e.span());
                Ok(())
            }
        }
    }

    /// True if the expression denotes a pointer-to-struct value.
    fn is_pointerish(&self, e: &Expr) -> bool {
        match e {
            Expr::Null(_) => true,
            Expr::IntLit(0, _) => false, // only NULL in explicit pointer context
            Expr::Ident(name, _) => matches!(self.lookup(name), Some(Binding::Ptr(_))),
            Expr::Member(base, field, true, _) => self
                .member_selector(base, field)
                .map(|s| s.is_some())
                .unwrap_or(false),
            Expr::Cast(ty, _, _) => {
                matches!(ty, TypeExpr::Pointer(_))
            }
            Expr::Call(name, _, _) => {
                name == "malloc"
                    || name == "calloc"
                    || self
                        .call_sigs
                        .get(name.as_str())
                        .is_some_and(|s| s.ret_ptr.is_some())
            }
            _ => false,
        }
    }

    /// The first call to a summarized function inside `e`, if any.
    fn first_user_call(&self, e: &Expr) -> Option<String> {
        let mut found: Option<String> = None;
        walk_calls(e, &mut |n| {
            if found.is_none() && self.call_sigs.contains_key(n) {
                found = Some(n.to_string());
            }
        });
        found
    }

    /// Reject calls to summarized functions buried inside an expression that
    /// is otherwise lowered opaquely (scalar havoc, untracked stores, …) —
    /// dropping the call would drop its heap effects.
    fn check_no_user_call(&self, e: &Expr) -> Result<(), Diagnostic> {
        if let Some(n) = self.first_user_call(e) {
            return Err(Diagnostic::error(
                e.span(),
                format!(
                    "call to `{n}` is only supported as a statement or as the \
                     entire right-hand side of an assignment; hoist it into \
                     its own statement"
                ),
            ));
        }
        Ok(())
    }

    /// If `base->field` is a selector access, return its ids.
    fn member_selector(
        &self,
        base: &Expr,
        field: &str,
    ) -> Result<Option<(StructId, psa_cfront::types::SelectorId)>, Diagnostic> {
        let sid = match self.pointee_of(base)? {
            Some(s) => s,
            None => return Ok(None),
        };
        let info = self.table.struct_info(sid);
        match info.field(field) {
            Some(f) => Ok(f.selector.map(|sel| (sid, sel))),
            None => Ok(None),
        }
    }

    /// The struct pointed to by a pointer expression, if statically known.
    fn pointee_of(&self, e: &Expr) -> Result<Option<StructId>, Diagnostic> {
        match e {
            Expr::Ident(name, _) => match self.lookup(name) {
                Some(Binding::Ptr(p)) => Ok(Some(self.pvars[p.0 as usize].pointee)),
                _ => Ok(None),
            },
            Expr::Member(base, field, true, _) => {
                let Some(sid) = self.pointee_of(base)? else {
                    return Ok(None);
                };
                let info = self.table.struct_info(sid);
                match info.field(field) {
                    Some(f) => Ok(f.ty.pointee_struct()),
                    None => Ok(None),
                }
            }
            Expr::Cast(ty, inner, span) => {
                let sem = self.table.resolve(ty, *span)?;
                match sem.pointee_struct() {
                    Some(s) => Ok(Some(s)),
                    None => self.pointee_of(inner),
                }
            }
            _ => Ok(None),
        }
    }

    /// Lower a pointer-valued expression to an operand (pvar or NULL),
    /// emitting Load statements for chains.
    #[allow(clippy::only_used_in_recursion)]
    fn lower_ptr_operand(&mut self, e: &Expr, span: Span) -> Result<Operand, Diagnostic> {
        match e {
            Expr::Null(_) | Expr::IntLit(0, _) => Ok(Operand::Null),
            Expr::Ident(name, sp) => match self.lookup(name) {
                Some(Binding::Ptr(p)) => Ok(Operand::Pvar(p)),
                Some(Binding::Scalar(_)) => Err(Diagnostic::error(
                    *sp,
                    format!("`{name}` is scalar but used as a pointer"),
                )),
                None => Err(Diagnostic::error(*sp, format!("unknown variable `{name}`"))),
            },
            Expr::Cast(_, inner, _) => self.lower_ptr_operand(inner, span),
            Expr::Member(base, field, true, sp) => {
                let Some((sid, sel)) = self.member_selector(base, field)? else {
                    return Err(Diagnostic::error(
                        *sp,
                        format!("`->{field}` is not a pointer-to-struct field"),
                    ));
                };
                let base_op = self.lower_ptr_operand(base, *sp)?;
                let Operand::Pvar(y) = base_op else {
                    return Err(Diagnostic::error(*sp, "dereference of NULL"));
                };
                let target = self.table.selector_target(sid, sel).ok_or_else(|| {
                    Diagnostic::error(*sp, format!("selector `{field}` has no struct target"))
                })?;
                let t = self.fresh_temp(target);
                self.emit_ptr(PtrStmt::Load(t, y, sel), *sp);
                Ok(Operand::Pvar(t))
            }
            Expr::Member(_, field, false, sp) => Err(Diagnostic::error(
                *sp,
                format!("`.{field}`: struct values are not supported, use pointers"),
            )),
            Expr::Call(name, args, sp) if name == "malloc" || name == "calloc" => {
                // Un-casted malloc in operand position: the struct type cannot
                // be inferred here.
                let _ = args;
                Err(Diagnostic::error(
                    *sp,
                    "cast `malloc` to a struct pointer type so its type is known",
                ))
            }
            Expr::Call(name, args, sp) if self.call_sigs.contains_key(name.as_str()) => {
                // Summarized call in pointer-operand position (e.g.
                // `x->left = build(...)`): call into a fresh temp.
                let sig = &self.call_sigs[name.as_str()];
                let Some((_, sid)) = sig.ret_ptr else {
                    return Err(Diagnostic::error(
                        *sp,
                        format!("`{name}` does not return a pointer"),
                    ));
                };
                let t = self.fresh_temp(sid);
                self.emit_call(name, args, Some(t), None, *sp)?;
                Ok(Operand::Pvar(t))
            }
            other => Err(Diagnostic::error(
                other.span(),
                format!("unsupported pointer expression: {}", short_desc(other)),
            )),
        }
    }

    /// Lower `lhs = rhs`.
    fn lower_assign(&mut self, lhs: &Expr, rhs: &Expr, span: Span) -> Result<(), Diagnostic> {
        // Pointer conditional on the rhs: x = c ? a : b lowers to an if/else.
        if let Expr::Cond(c, a, b, _) = rhs {
            if self.is_pointerish(a) || self.is_pointerish(b) {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.lower_cond(c, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.lower_assign(lhs, a, span)?;
                self.flush_temps();
                self.seal(Terminator::Goto(join));
                self.switch_to(else_bb);
                self.lower_assign(lhs, b, span)?;
                self.flush_temps();
                self.seal(Terminator::Goto(join));
                self.switch_to(join);
                return Ok(());
            }
        }

        match lhs {
            Expr::Ident(name, sp) => match self.lookup(name) {
                Some(Binding::Ptr(x)) => self.lower_ptr_assign_to_var(x, rhs, span),
                Some(Binding::Scalar(Some(id))) => {
                    // Tracked int: constant assignments become flag facts.
                    match rhs {
                        Expr::IntLit(v, _) => self.emit(Stmt::ScalarConst(id, *v), span),
                        Expr::Call(cname, cargs, sp)
                            if self.call_sigs.contains_key(cname.as_str()) =>
                        {
                            let dest = self.call_sigs[cname.as_str()].ret_scalar.map(|_| id);
                            self.emit_call(cname, cargs, None, dest, *sp)?;
                            if dest.is_none() {
                                self.emit(
                                    Stmt::ScalarHavoc(id, format!("{name} = {cname}(...)")),
                                    span,
                                );
                            }
                        }
                        _ => {
                            self.check_no_user_call(rhs)?;
                            self.emit(
                                Stmt::ScalarHavoc(id, format!("{name} = {}", short_desc(rhs))),
                                span,
                            );
                        }
                    }
                    Ok(())
                }
                Some(Binding::Scalar(None)) => {
                    if let Expr::Call(cname, cargs, sp) = rhs {
                        if self.call_sigs.contains_key(cname.as_str()) {
                            // Result lands in an untracked slot, but the call's
                            // heap effects still happen.
                            return self.emit_call(cname, cargs, None, None, *sp);
                        }
                    }
                    self.check_no_user_call(rhs)?;
                    self.emit(Stmt::Scalar(format!("{name} = {}", short_desc(rhs))), span);
                    Ok(())
                }
                None => Err(Diagnostic::error(*sp, format!("unknown variable `{name}`"))),
            },
            Expr::Member(base, field, true, sp) => {
                match self.member_selector(base, field)? {
                    Some((_, sel)) => {
                        // Pointer field store.
                        let base_op = self.lower_ptr_operand(base, *sp)?;
                        let Operand::Pvar(x) = base_op else {
                            return Err(Diagnostic::error(*sp, "store through NULL"));
                        };
                        let val = self.lower_store_value(rhs, span)?;
                        match val {
                            Operand::Null => self.emit_ptr(PtrStmt::StoreNil(x, sel), span),
                            Operand::Pvar(y) => self.emit_ptr(PtrStmt::Store(x, sel, y), span),
                        }
                        Ok(())
                    }
                    None => {
                        // Scalar field store: no shape effect, but the
                        // written location matters for loop-independence
                        // reasoning, so the base chain is materialized into
                        // a pvar and recorded.
                        let base_op = self.lower_ptr_operand(base, *sp)?;
                        let Operand::Pvar(x) = base_op else {
                            return Err(Diagnostic::error(*sp, "store through NULL"));
                        };
                        self.check_no_user_call(rhs)?;
                        self.emit(
                            Stmt::ScalarStore(x, format!("->{field} = {}", short_desc(rhs))),
                            span,
                        );
                        Ok(())
                    }
                }
            }
            Expr::Member(_, field, false, sp) => Err(Diagnostic::error(
                *sp,
                format!("`.{field}`: struct values are not supported, use pointers"),
            )),
            Expr::Unary(UnOp::Deref, _, sp) => Err(Diagnostic::error(
                *sp,
                "explicit `*p` dereference is not supported; use `p->field`",
            )),
            other => Err(Diagnostic::error(
                other.span(),
                format!("unsupported assignment target: {}", short_desc(other)),
            )),
        }
    }

    /// Lower the value side of a pointer store; may introduce a temp for
    /// malloc or chains.
    fn lower_store_value(&mut self, rhs: &Expr, span: Span) -> Result<Operand, Diagnostic> {
        if let Some(sid) = self.malloc_struct(rhs)? {
            let t = self.fresh_temp(sid);
            self.emit_ptr(PtrStmt::Malloc(t, sid), span);
            return Ok(Operand::Pvar(t));
        }
        self.lower_ptr_operand(rhs, span)
    }

    /// Lower `x = rhs` for pointer pvar `x`.
    fn lower_ptr_assign_to_var(
        &mut self,
        x: PvarId,
        rhs: &Expr,
        span: Span,
    ) -> Result<(), Diagnostic> {
        if let Some(sid) = self.malloc_struct(rhs)? {
            self.emit_ptr(PtrStmt::Malloc(x, sid), span);
            return Ok(());
        }
        match rhs {
            Expr::Null(_) | Expr::IntLit(0, _) => {
                self.emit_ptr(PtrStmt::Nil(x), span);
                Ok(())
            }
            Expr::Ident(_, _) | Expr::Cast(_, _, _) => {
                match self.lower_ptr_operand(rhs, span)? {
                    Operand::Null => self.emit_ptr(PtrStmt::Nil(x), span),
                    Operand::Pvar(y) => self.emit_ptr(PtrStmt::Copy(x, y), span),
                }
                Ok(())
            }
            Expr::Member(base, field, true, sp) => {
                let Some((_, sel)) = self.member_selector(base, field)? else {
                    return Err(Diagnostic::error(
                        *sp,
                        format!("`->{field}` is not a pointer-to-struct field"),
                    ));
                };
                // Load the final step directly into x (no extra temp).
                let base_op = self.lower_ptr_operand(base, *sp)?;
                let Operand::Pvar(y) = base_op else {
                    return Err(Diagnostic::error(*sp, "dereference of NULL"));
                };
                self.emit_ptr(PtrStmt::Load(x, y, sel), span);
                Ok(())
            }
            Expr::Call(cname, cargs, sp) if self.call_sigs.contains_key(cname.as_str()) => {
                // `x = f(...)` for a summarized callee: return straight into x.
                self.emit_call(cname, cargs, Some(x), None, *sp)
            }
            other => Err(Diagnostic::error(
                other.span(),
                format!(
                    "unsupported pointer right-hand side: {} (pointer arithmetic \
                     and calls to undefined functions are outside the subset)",
                    short_desc(other)
                ),
            )),
        }
    }

    /// If `e` is `malloc`/`calloc` (possibly under a cast), the struct
    /// allocated.
    fn malloc_struct(&mut self, e: &Expr) -> Result<Option<StructId>, Diagnostic> {
        match e {
            Expr::Cast(ty, inner, span) => {
                if let Expr::Call(name, _, _) = &**inner {
                    if name == "malloc" || name == "calloc" {
                        let sem = self.table.resolve(ty, *span)?;
                        return match sem.pointee_struct() {
                            Some(sid) => Ok(Some(sid)),
                            None => Err(Diagnostic::error(
                                *span,
                                "malloc must be cast to a struct pointer type",
                            )),
                        };
                    }
                }
                Ok(None)
            }
            Expr::Call(name, args, span) if name == "malloc" || name == "calloc" => {
                // Uncast malloc: try to infer from sizeof argument.
                for a in args {
                    if let Expr::SizeOf(ty, _) = a {
                        let sem = self.table.resolve(ty, *span)?;
                        if let SemType::Struct(sid) = sem {
                            return Ok(Some(sid));
                        }
                    }
                }
                Err(Diagnostic::error(
                    *span,
                    "cannot infer the allocated struct; cast malloc or pass \
                     sizeof(struct T)",
                ))
            }
            _ => Ok(None),
        }
    }

    /// Lower a call in statement position.
    fn lower_call(&mut self, name: &str, args: &[Expr], span: Span) -> Result<(), Diagnostic> {
        match name {
            "free" => {
                // The paper's analysis treats deallocation as shape-identity
                // (freed locations are never accessed again by a correct
                // program), but the memory-safety client needs the freed
                // pvar, so a pointer argument lowers to a real statement.
                match args {
                    [arg] if self.is_pointerish(arg) => {
                        match self.lower_ptr_operand(arg, span)? {
                            Operand::Pvar(p) => self.emit(Stmt::Free(p), span),
                            // free(NULL) is a no-op in C.
                            Operand::Null => {
                                self.emit(Stmt::Scalar("free(NULL)".to_string()), span);
                            }
                        }
                    }
                    _ => self.emit(Stmt::Scalar("free(...)".to_string()), span),
                }
                Ok(())
            }
            "printf" | "fprintf" | "puts" | "exit" | "srand" | "assert" => {
                self.emit(Stmt::Scalar(format!("{name}(...)")), span);
                Ok(())
            }
            "malloc" | "calloc" => {
                // Result discarded: allocate-and-leak has no observable shape.
                self.emit(Stmt::Scalar("malloc (discarded)".to_string()), span);
                Ok(())
            }
            _ if self.call_sigs.contains_key(name) => {
                // Result-discarding call to a summarized callee.
                self.emit_call(name, args, None, None, span)
            }
            _ => {
                // Undefined call: allowed only if no pointer-to-struct argument
                // could leak/mutate heap structure. (Calls to functions defined
                // in the translation unit never reach this point: the inliner
                // expands the non-recursive ones and `call_sigs` covers the
                // recursive ones.)
                for a in args {
                    if self.is_pointerish(a) {
                        return Err(Diagnostic::error(
                            span,
                            format!(
                                "call to undefined function `{name}` with pointer \
                                 argument; define it in this translation unit so \
                                 it can be inlined or summarized, or remove the \
                                 call"
                            ),
                        ));
                    }
                }
                self.emit(Stmt::Scalar(format!("{name}(...)")), span);
                Ok(())
            }
        }
    }

    /// Emit a [`Stmt::Call`] to a summarized callee, checking arity and
    /// return-slot compatibility and lowering the arguments.
    fn emit_call(
        &mut self,
        name: &str,
        args: &[Expr],
        dest_ptr: Option<PvarId>,
        dest_scalar: Option<ScalarId>,
        span: Span,
    ) -> Result<(), Diagnostic> {
        let sig = self.call_sigs[name].clone();
        if args.len() != sig.params.len() {
            return Err(Diagnostic::error(
                span,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        if dest_ptr.is_some() && sig.ret_ptr.is_none() {
            return Err(Diagnostic::error(
                span,
                format!("`{name}` does not return a pointer"),
            ));
        }
        let mut ptr_args = Vec::new();
        let mut scalar_args = Vec::new();
        for (a, p) in args.iter().zip(&sig.params) {
            match p {
                CallParam::Ptr => {
                    let op = self.lower_store_value(a, a.span())?;
                    ptr_args.push(match op {
                        Operand::Null => CallArg::Null,
                        Operand::Pvar(pv) => CallArg::Pvar(pv),
                    });
                }
                CallParam::Scalar(Some(_)) => {
                    self.check_no_user_call(a)?;
                    scalar_args.push(self.lower_scalar_arg(a));
                }
                CallParam::Scalar(None) => {
                    // Untracked scalar formal: the value is unobservable, but
                    // a buried call inside the argument would not be.
                    self.check_no_user_call(a)?;
                }
            }
        }
        self.emit(
            Stmt::Call(CallStmt {
                callee: sig.index,
                ptr_args,
                scalar_args,
                ret_ptr: dest_ptr,
                ret_scalar: dest_scalar,
            }),
            span,
        );
        Ok(())
    }

    /// Lower a tracked-int argument expression to a [`CallScalarArg`].
    fn lower_scalar_arg(&mut self, e: &Expr) -> CallScalarArg {
        match e {
            Expr::IntLit(v, _) => CallScalarArg::Const(*v),
            Expr::Ident(n, _) => match self.lookup(n) {
                Some(Binding::Scalar(Some(id))) => CallScalarArg::Var(id),
                _ => CallScalarArg::Opaque,
            },
            _ => CallScalarArg::Opaque,
        }
    }

    fn finish(mut self) -> Result<FuncIr, Diagnostic> {
        self.seal(Terminator::Return);
        let mut ir = FuncIr {
            name: self.name,
            pvars: self.pvars,
            scalars: self.scalars,
            stmts: self.stmts,
            blocks: self.blocks,
            entry: BlockId(0),
            loops: self.loops,
            exit_edges: self.exit_edges,
            entry_edges: self.entry_edges,
            types: self.table,
            callees: Vec::new(),
        };
        ir.validate()
            .map_err(|m| Diagnostic::error(Span::SYNTH, m))?;
        crate::induction::detect(&mut ir);
        Ok(ir)
    }
}

/// A normalized pointer operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Null,
    Pvar(PvarId),
}

/// A short printable description of an expression for Scalar traces.
fn short_desc(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => v.to_string(),
        Expr::FloatLit(v, _) => v.to_string(),
        Expr::StrLit(_, _) => "\"...\"".into(),
        Expr::Null(_) => "NULL".into(),
        Expr::Ident(n, _) => n.clone(),
        Expr::Unary(_, _, _) => "unary".into(),
        Expr::Binary(_, _, _, _) => "arith".into(),
        Expr::Assign(_, _, _) => "assign".into(),
        Expr::Member(_, f, _, _) => format!("->{f}"),
        Expr::Call(n, _, _) => format!("{n}(...)"),
        Expr::Cast(_, _, _) => "cast".into(),
        Expr::SizeOf(_, _) => "sizeof".into(),
        Expr::Cond(_, _, _, _) => "?:".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_cfront::parse_and_type;

    const TREEADD: &str = r#"
        struct tree { int val; struct tree *left; struct tree *right; };
        struct tree *build(int depth) {
            struct tree *t;
            struct tree *l;
            struct tree *r;
            if (depth <= 0) { return NULL; }
            t = (struct tree *) malloc(sizeof(struct tree));
            l = build(depth - 1);
            r = build(depth - 1);
            t->left = l;
            t->right = r;
            return t;
        }
        int sum(struct tree *t) {
            int a;
            int b;
            if (t == NULL) { return 0; }
            a = sum(t->left);
            b = sum(t->right);
            return a + b + 1;
        }
        int main() {
            struct tree *root;
            int total;
            root = build(4);
            total = sum(root);
            return 0;
        }
    "#;

    #[test]
    fn lower_program_summarizes_recursive_functions() {
        let (p, t) = parse_and_type(TREEADD).unwrap();
        let ir = lower_program(&p, &t, "main").unwrap();
        assert_eq!(ir.callees.len(), 2, "build and sum are recursive");
        let build = ir.callees.iter().find(|c| c.name == "build").unwrap();
        let sum = ir.callees.iter().find(|c| c.name == "sum").unwrap();
        // build(int): no pointer formals, pointer return.
        assert!(build.params_ptr.is_empty());
        assert_eq!(build.params_scalar.len(), 1);
        assert!(build.ret_ptr.is_some());
        assert!(build.anchors.is_empty());
        // sum(tree*): one pointer formal with its anchor, tracked int return.
        assert_eq!(sum.params_ptr.len(), 1);
        assert_eq!(sum.anchors.len(), 1);
        assert!(sum.ret_ptr.is_none());
        assert!(sum.ret_scalar.is_some());
        assert!(!build.may_free && !sum.may_free);
        // Root calls both; each callee body contains its recursive call.
        let calls = |ir: &FuncIr| {
            ir.stmts
                .iter()
                .filter(|s| matches!(s.stmt, Stmt::Call(_)))
                .count()
        };
        assert_eq!(calls(&ir), 2);
        assert_eq!(calls(&build.ir), 2);
        assert_eq!(calls(&sum.ir), 2);
        // All FuncIrs share the final tables.
        assert_eq!(ir.pvars.len(), build.ir.pvars.len());
        assert_eq!(ir.scalars.len(), sum.ir.scalars.len());
        // Owned slots are disjoint between the callees.
        for p in &build.owned_pvars {
            assert!(!sum.owned_pvars.contains(p));
        }
    }

    #[test]
    fn lower_program_matches_inline_path_when_no_recursion() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            struct node *mk(void) {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = NULL;
                return p;
            }
            int main() {
                struct node *a;
                a = mk();
                return 0;
            }
        "#;
        let (p, t) = parse_and_type(src).unwrap();
        let via_program = lower_program(&p, &t, "main").unwrap();
        let p2 = crate::inline::inline_program(&p, "main").unwrap();
        let via_inline = lower_main(&p2, &t).unwrap();
        assert_eq!(
            format!("{:?}", via_program.stmts),
            format!("{:?}", via_inline.stmts)
        );
        assert_eq!(
            format!("{:?}", via_program.blocks),
            format!("{:?}", via_inline.blocks)
        );
        assert!(via_program.callees.is_empty());
    }

    #[test]
    fn call_in_condition_rejected_with_hoist_hint() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int depth(struct node *p) {
                int d;
                if (p == NULL) { return 0; }
                d = depth(p->nxt);
                return d + 1;
            }
            int main() {
                struct node *l;
                l = NULL;
                if (depth(l) == 0) { return 1; }
                return 0;
            }
        "#;
        let (p, t) = parse_and_type(src).unwrap();
        let err = lower_program(&p, &t, "main").unwrap_err();
        assert!(err.message.contains("condition"), "{}", err.message);
    }

    fn lower(body: &str) -> FuncIr {
        let src = format!(
            "struct node {{ int v; struct node *nxt; struct node *prv; }};\n\
             int main() {{ {body} return 0; }}"
        );
        let (p, t) = parse_and_type(&src).unwrap();
        lower_main(&p, &t).unwrap()
    }

    fn ptr_stmts(ir: &FuncIr) -> Vec<PtrStmt> {
        ir.stmts
            .iter()
            .filter_map(|s| match &s.stmt {
                Stmt::Ptr(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_statements_lower_directly() {
        let ir = lower(
            "struct node *x; struct node *y;\n\
             x = (struct node *) malloc(sizeof(struct node));\n\
             y = x; x = NULL; y->nxt = NULL;",
        );
        let x = ir.pvar_id("x").unwrap();
        let y = ir.pvar_id("y").unwrap();
        let nxt = ir.types.selector_id("nxt").unwrap();
        let ps = ptr_stmts(&ir);
        assert!(ps.contains(&PtrStmt::Copy(y, x)));
        assert!(ps.contains(&PtrStmt::Nil(x)));
        assert!(ps.contains(&PtrStmt::StoreNil(y, nxt)));
        assert!(matches!(ps[0], PtrStmt::Malloc(p, _) if p == x));
    }

    #[test]
    fn chain_introduces_and_kills_temp() {
        let ir = lower("struct node *x; x->nxt->prv = x;");
        let ps = ptr_stmts(&ir);
        // Expect: @t0 = x->nxt ; @t0->prv = x ; @t0 = NULL
        let x = ir.pvar_id("x").unwrap();
        let nxt = ir.types.selector_id("nxt").unwrap();
        let prv = ir.types.selector_id("prv").unwrap();
        let t0 = ir.pvar_id("@t0").unwrap();
        assert!(ir.pvar(t0).is_temp);
        assert_eq!(
            ps,
            vec![
                PtrStmt::Load(t0, x, nxt),
                PtrStmt::Store(t0, prv, x),
                PtrStmt::Nil(t0),
            ]
        );
    }

    #[test]
    fn load_chain_into_var_uses_no_final_temp() {
        let ir = lower("struct node *x; struct node *z; z = x->nxt->prv;");
        let ps = ptr_stmts(&ir);
        let x = ir.pvar_id("x").unwrap();
        let z = ir.pvar_id("z").unwrap();
        let nxt = ir.types.selector_id("nxt").unwrap();
        let prv = ir.types.selector_id("prv").unwrap();
        let t0 = ir.pvar_id("@t0").unwrap();
        assert_eq!(
            ps,
            vec![
                PtrStmt::Load(t0, x, nxt),
                PtrStmt::Load(z, t0, prv),
                PtrStmt::Nil(t0)
            ]
        );
    }

    #[test]
    fn store_of_malloc_uses_temp() {
        let ir = lower("struct node *x; x->nxt = (struct node *) malloc(sizeof(struct node));");
        let ps = ptr_stmts(&ir);
        assert!(matches!(ps[0], PtrStmt::Malloc(_, _)));
        assert!(matches!(ps[1], PtrStmt::Store(_, _, _)));
        assert!(matches!(ps[2], PtrStmt::Nil(_)));
    }

    #[test]
    fn scalar_field_store_is_noop() {
        let ir = lower("struct node *x; x->v = 42;");
        assert_eq!(ptr_stmts(&ir).len(), 0);
        let x = ir.pvar_id("x").unwrap();
        assert!(ir
            .stmts
            .iter()
            .any(|s| matches!(&s.stmt, Stmt::ScalarStore(b, d) if *b == x && d.contains("->v"))));
    }

    #[test]
    fn while_null_test_condition() {
        let ir = lower("struct node *p; while (p != NULL) { p = p->nxt; }");
        let p = ir.pvar_id("p").unwrap();
        let has_branch = ir
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { cond: Cond::PtrNull(q), .. } if q == p));
        assert!(has_branch, "expected a PtrNull branch on p");
        assert_eq!(ir.loops.len(), 1);
    }

    #[test]
    fn truthiness_condition_on_pointer() {
        let ir = lower("struct node *p; while (p) { p = p->nxt; }");
        let p = ir.pvar_id("p").unwrap();
        // while (p): PtrNull(p) with then=exit, else=body.
        let branch = ir
            .blocks
            .iter()
            .find_map(|b| match b.term {
                Terminator::Branch {
                    cond: Cond::PtrNull(q),
                    then_bb,
                    else_bb,
                } if q == p => Some((then_bb, else_bb)),
                _ => None,
            })
            .expect("branch");
        // The else (non-null) edge must go to the loop body, which contains
        // the Load statement.
        let body = ir.block(branch.1);
        assert!(body
            .stmts
            .iter()
            .any(|&s| matches!(ir.stmt(s).stmt, Stmt::Ptr(PtrStmt::Load(_, _, _)))));
    }

    #[test]
    fn cond_temp_killed_on_both_branches() {
        let ir = lower("struct node *p; if (p->nxt != NULL) { p = NULL; } else { p = p->nxt; }");
        let t0 = ir.pvar_id("@t0").unwrap();
        // Find the branch block; both successors must begin with Nil(@t0).
        let (tb, fb) = ir
            .blocks
            .iter()
            .find_map(|b| match b.term {
                Terminator::Branch {
                    cond: Cond::PtrNull(q),
                    then_bb,
                    else_bb,
                } if q == t0 => Some((then_bb, else_bb)),
                _ => None,
            })
            .expect("branch on temp");
        for bb in [tb, fb] {
            let first = ir.block(bb).stmts.first().copied().expect("stmt");
            assert_eq!(ir.stmt(first).stmt, Stmt::Ptr(PtrStmt::Nil(t0)));
        }
    }

    #[test]
    fn ptr_eq_condition() {
        let ir = lower("struct node *p; struct node *q; if (p == q) { p = NULL; }");
        let p = ir.pvar_id("p").unwrap();
        let q = ir.pvar_id("q").unwrap();
        assert!(ir.blocks.iter().any(|b| matches!(
            b.term,
            Terminator::Branch { cond: Cond::PtrEq(a, b2), .. } if a == p && b2 == q
        )));
    }

    #[test]
    fn short_circuit_and() {
        let ir =
            lower("struct node *p; int i; while (p != NULL && i < 3) { p = p->nxt; i = i + 1; }");
        // Two leaf branches: PtrNull and Opaque.
        let mut kinds = Vec::new();
        for b in &ir.blocks {
            if let Terminator::Branch { cond, .. } = b.term {
                kinds.push(cond);
            }
        }
        assert!(kinds.iter().any(|c| matches!(c, Cond::PtrNull(_))));
        assert!(kinds.contains(&Cond::Opaque));
    }

    #[test]
    fn loop_exit_edges_recorded() {
        let ir = lower("struct node *p; while (p != NULL) { p = p->nxt; }");
        assert!(
            !ir.exit_edges.is_empty(),
            "while loop must record exit edges for TOUCH clearing"
        );
        let l0 = LoopId(0);
        assert!(ir.exit_edges.values().any(|v| v.contains(&l0)));
    }

    #[test]
    fn break_records_exit_edge() {
        let ir =
            lower("struct node *p; while (p != NULL) { if (p->v == 0) { break; } p = p->nxt; }");
        let exits: usize = ir.exit_edges.len();
        assert!(exits >= 2, "cond exit + break exit, got {exits}");
    }

    #[test]
    fn nested_loop_statement_tags() {
        let ir = lower(
            "struct node *p; struct node *q;\n\
             while (p != NULL) { q = p; while (q != NULL) { q = q->nxt; } p = p->nxt; }",
        );
        assert_eq!(ir.loops.len(), 2);
        // The inner Load (q = q->nxt) is tagged with both loops.
        let inner_load = ir
            .stmts
            .iter()
            .find(|s| matches!(s.stmt, Stmt::Ptr(PtrStmt::Load(a, b, _)) if a == b))
            .expect("inner load");
        assert_eq!(inner_load.loops.len(), 2);
        assert_eq!(ir.loops[1].parent, Some(LoopId(0)));
        assert_eq!(ir.loops[1].depth, 1);
    }

    #[test]
    fn for_loop_structure() {
        let ir = lower(
            "struct node *p; struct node *l; int i;\n\
             for (i = 0; i < 4; i++) {\n\
               p = (struct node *) malloc(sizeof(struct node));\n\
               p->nxt = l; l = p;\n\
             }",
        );
        assert_eq!(ir.loops.len(), 1);
        let ps = ptr_stmts(&ir);
        assert!(ps.iter().any(|s| matches!(s, PtrStmt::Malloc(_, _))));
        assert!(ps.iter().any(|s| matches!(s, PtrStmt::Store(_, _, _))));
    }

    #[test]
    fn unknown_call_with_pointer_arg_rejected() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() { struct node *p; frob(p); return 0; }
        "#;
        let (p, t) = parse_and_type(src).unwrap();
        assert!(lower_main(&p, &t).is_err());
    }

    #[test]
    fn pointer_params_rejected() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int work(struct node *p) { return 0; }
            int main() { return 0; }
        "#;
        let (p, t) = parse_and_type(src).unwrap();
        assert!(lower_function(&p, &t, "work").is_err());
    }

    #[test]
    fn globals_registered_and_initialized() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            struct node *head;
            int N = 4;
            int main() { head = NULL; return 0; }
        "#;
        let (p, t) = parse_and_type(src).unwrap();
        let ir = lower_main(&p, &t).unwrap();
        assert!(ir.pvar_id("head").is_some());
    }

    #[test]
    fn return_mid_function_seals_block() {
        let ir = lower("struct node *p; if (p == NULL) { return 1; } p = p->nxt;");
        ir.validate().unwrap();
    }

    #[test]
    fn free_lowers_to_free_stmt_and_printf_is_noop() {
        let ir = lower(r#"struct node *p; free(p); printf("%d", 1);"#);
        assert_eq!(ptr_stmts(&ir).len(), 0, "free is not a pointer statement");
        let p = ir.pvar_id("p").unwrap();
        assert!(
            ir.stmts.iter().any(|s| s.stmt == Stmt::Free(p)),
            "free(p) lowers to Stmt::Free"
        );
        assert!(ir
            .stmts
            .iter()
            .any(|s| matches!(&s.stmt, Stmt::Scalar(d) if d.contains("printf"))));
    }

    #[test]
    fn free_null_and_free_chain_lower() {
        // free(NULL) is a no-op; free(p->nxt) loads the field first.
        let ir = lower("struct node *p; free(0); free(p->nxt);");
        assert!(ir
            .stmts
            .iter()
            .any(|s| matches!(&s.stmt, Stmt::Ptr(PtrStmt::Load(_, _, _)))));
        assert!(ir.stmts.iter().any(|s| matches!(&s.stmt, Stmt::Free(_))));
    }

    #[test]
    fn do_while_loops_lower() {
        let ir = lower("struct node *p; do { p = p->nxt; } while (p != NULL);");
        assert_eq!(ir.loops.len(), 1);
        assert!(!ir.exit_edges.is_empty());
    }

    #[test]
    fn self_store_cycle() {
        // x->nxt = x : a self-cycle, common in circular lists.
        let ir = lower("struct node *x; x->nxt = x;");
        let x = ir.pvar_id("x").unwrap();
        let nxt = ir.types.selector_id("nxt").unwrap();
        assert_eq!(ptr_stmts(&ir), vec![PtrStmt::Store(x, nxt, x)]);
    }
}
