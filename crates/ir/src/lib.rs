//! # psa-ir — normalized pointer IR for progressive shape analysis
//!
//! The paper's analysis consumes exactly **six simple pointer statements**
//! (`x = NULL`, `x = malloc`, `x = y`, `x->sel = NULL`, `x->sel = y`,
//! `x = y->sel`); "more complex pointer instructions can be built upon these
//! simple ones and temporal variables" (§2). This crate performs that
//! normalization:
//!
//! * [`lower::lower_function`] flattens arbitrary access chains into the six
//!   statements plus compiler temporaries, lowers structured control flow
//!   into a [`func::FuncIr`] control-flow graph, and desugars conditions into
//!   short-circuit branches whose leaves are NULL tests, pointer equalities
//!   or opaque scalar tests;
//! * [`func`] defines the statement/block/loop data model, including the
//!   **loop-exit edge actions** the engine uses to erase per-loop TOUCH sets;
//! * [`induction`] implements the preprocessing pass the paper attributes to
//!   Hwang/Saltz access-path expressions: detecting the *induction pointers*
//!   (traversal pvars) of every loop, the only pvars eligible for TOUCH;
//! * [`inline`] automates the call inlining the paper performed by hand
//!   (non-recursive user functions are expanded at their call sites before
//!   lowering).

pub mod asserts;
pub mod func;
pub mod induction;
pub mod inline;
pub mod lower;
pub mod pretty;

pub use asserts::{asserts_of_source, resolve_asserts, AssertPred, AssertSite, Assertion};
pub use func::{
    Block, BlockId, CallArg, CallScalarArg, CallStmt, CalleeFunc, Cond, FuncIr, LoopId, LoopInfo,
    PtrStmt, PvarId, PvarInfo, ScalarId, Stmt, StmtId, StmtInfo, Terminator,
};
pub use inline::{inline_program, inline_program_keep};
pub use lower::{lower_function, lower_main, lower_program, LowerError};

#[cfg(test)]
mod tests {
    use super::*;
    use psa_cfront::parse_and_type;

    #[test]
    fn end_to_end_lowering_smoke() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *l;
                struct node *p;
                l = NULL;
                while (p != NULL) {
                    p = p->nxt;
                }
                return 0;
            }
        "#;
        let (program, table) = parse_and_type(src).unwrap();
        let ir = lower_main(&program, &table).unwrap();
        assert!(ir.blocks.len() >= 3);
        assert_eq!(ir.loops.len(), 1);
        // `p` must be detected as an induction pointer of the loop.
        let p = ir.pvar_id("p").unwrap();
        assert!(ir.loops[0].ipvars.contains(&p));
    }
}
