//! Data model of a lowered function: pvars, statements, blocks, loops.

use psa_cfront::diag::Span;
use psa_cfront::types::{SelectorId, StructId, TypeTable};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a pointer variable (program pvar or compiler temporary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PvarId(pub u32);

/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of a statement (global within a function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Identifier of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// Identifier of a tracked scalar (int) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarId(pub u32);

impl fmt::Display for ScalarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sc{}", self.0)
    }
}

impl fmt::Display for PvarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Metadata of one pointer variable.
#[derive(Debug, Clone, PartialEq)]
pub struct PvarInfo {
    /// Source name, or `@tN` for temporaries.
    pub name: String,
    /// The struct this pvar points to.
    pub pointee: StructId,
    /// True for compiler-introduced temporaries.
    pub is_temp: bool,
}

/// The six simple pointer statements of §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrStmt {
    /// `x = NULL`
    Nil(PvarId),
    /// `x = malloc(sizeof(struct T))`
    Malloc(PvarId, StructId),
    /// `x = y`
    Copy(PvarId, PvarId),
    /// `x->sel = NULL`
    StoreNil(PvarId, SelectorId),
    /// `x->sel = y`
    Store(PvarId, SelectorId, PvarId),
    /// `x = y->sel`
    Load(PvarId, PvarId, SelectorId),
}

impl PtrStmt {
    /// The pvar whose binding this statement (re)defines, if any.
    pub fn def(&self) -> Option<PvarId> {
        match *self {
            PtrStmt::Nil(x)
            | PtrStmt::Malloc(x, _)
            | PtrStmt::Copy(x, _)
            | PtrStmt::Load(x, _, _) => Some(x),
            PtrStmt::StoreNil(_, _) | PtrStmt::Store(_, _, _) => None,
        }
    }

    /// Pvars read by this statement.
    pub fn uses(&self) -> Vec<PvarId> {
        match *self {
            PtrStmt::Nil(_) | PtrStmt::Malloc(_, _) => vec![],
            PtrStmt::Copy(_, y) | PtrStmt::Load(_, y, _) => vec![y],
            PtrStmt::StoreNil(x, _) => vec![x],
            PtrStmt::Store(x, _, y) => vec![x, y],
        }
    }
}

/// A pointer-valued actual argument of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallArg {
    /// The argument is the value of a pvar at the call site.
    Pvar(PvarId),
    /// The argument is the NULL literal.
    Null,
}

/// A scalar actual argument. The abstract transfer ignores scalar values
/// (callee scalar formals start unknown, which keeps summary entries
/// convergent); the concrete interpreter evaluates `Const`/`Var`
/// truthfully and materializes seeded garbage for `Opaque`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallScalarArg {
    /// An integer literal.
    Const(i64),
    /// The value of a tracked scalar variable.
    Var(ScalarId),
    /// Anything else (arithmetic, untracked variables).
    Opaque,
}

/// A call to a defined function that survived inlining (i.e. a recursive
/// one), analyzed via entry/exit summaries. `callee` indexes the **root**
/// function's [`FuncIr::callees`] table — callee bodies reference the same
/// table, so indices stay meaningful across nesting.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStmt {
    /// Index into the root [`FuncIr::callees`].
    pub callee: u32,
    /// Pointer-to-struct actuals, in callee parameter order.
    pub ptr_args: Vec<CallArg>,
    /// Scalar actuals, in callee parameter order.
    pub scalar_args: Vec<CallScalarArg>,
    /// Destination pvar for a pointer-returning call.
    pub ret_ptr: Option<PvarId>,
    /// Destination tracked scalar for an int-returning call.
    pub ret_scalar: Option<ScalarId>,
}

/// A lowered callee: the body of a recursive function sharing the root
/// function's pvar/scalar universe, plus the metadata the interprocedural
/// transfer needs (formals, the never-assigned anchor pvars that pin
/// argument targets through the callee analysis, and the return slots).
#[derive(Debug, Clone)]
pub struct CalleeFunc {
    /// Source name.
    pub name: String,
    /// The lowered body. Shares the root's full pvar/scalar tables; its
    /// own `callees` list is empty (call indices refer to the root table).
    pub ir: FuncIr,
    /// Pointer-to-struct formals, in parameter order.
    pub params_ptr: Vec<PvarId>,
    /// Tracked scalar formals, in parameter order.
    pub params_scalar: Vec<ScalarId>,
    /// One reserved, never-assigned pvar per pointer formal. Bound to the
    /// argument target in the localized entry graph, so the target cell
    /// stays identifiable (and gc-rooted) through the callee analysis and
    /// can be re-bound at glue time.
    pub anchors: Vec<PvarId>,
    /// Reserved, never-assigned cutpoint anchors. When the caller's frame
    /// references the passed region somewhere other than an argument
    /// target (a sibling cell materialized out of a shared summary, a
    /// local bound mid-structure), the localization pins that cell with
    /// one of these slots so the glue can find it in the exit graph. The
    /// supply is fixed; call sites needing more give up soundly.
    pub cut_anchors: Vec<PvarId>,
    /// Slot holding the returned pointer (`{name}.__ret`), if any.
    pub ret_ptr: Option<PvarId>,
    /// Slot holding the returned scalar, if any.
    pub ret_scalar: Option<ScalarId>,
    /// Every pvar owned by this function: formals, anchors, return slot,
    /// body locals and temps. The concrete interpreter saves/restores
    /// exactly these slots across call frames.
    pub owned_pvars: Vec<PvarId>,
    /// Every tracked scalar owned by this function.
    pub owned_scalars: Vec<ScalarId>,
    /// The body (or anything it can call) contains `free`.
    pub may_free: bool,
    /// Content hash of the body, part of the summary-cache key so
    /// identical bodies share summaries across lowerings.
    pub body_hash: u64,
}

/// One IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A pointer statement, the analysis' bread and butter.
    Ptr(PtrStmt),
    /// A write to a **scalar** field through a pointer (`x->v = …`). No
    /// shape effect, but the parallelism client needs the written base pvar
    /// to reason about loop independence.
    ScalarStore(PvarId, String),
    /// `v = <integer literal>` for a tracked scalar variable — the flag
    /// assignments the analysis propagates (e.g. `done = 1`).
    ScalarConst(ScalarId, i64),
    /// Any other assignment to a tracked scalar variable: its value becomes
    /// unknown.
    ScalarHavoc(ScalarId, String),
    /// `free(x)` — deallocates the cell `x` points to. The *shape* transfer
    /// is the identity (the abstraction keeps covering the retained cell;
    /// NULL-ness of `x` is untouched), but the memory-safety client tracks
    /// the freed cell's provenance, and the concrete interpreter observes
    /// use-after-free / double-free through it. `free(NULL)` is a no-op,
    /// matching C.
    Free(PvarId),
    /// Anything with no shape effect and no heap write (scalar arithmetic,
    /// `printf`). Keeps a short description for traces.
    Scalar(String),
    /// A call to a recursive (non-inlinable) defined function, analyzed
    /// through the summary cache. See [`CallStmt`].
    Call(CallStmt),
}

/// A statement with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtInfo {
    /// The statement itself.
    pub stmt: Stmt,
    /// Source location it was lowered from.
    pub span: Span,
    /// Stack of enclosing loops, outermost first.
    pub loops: Vec<LoopId>,
}

/// Leaf branch conditions after short-circuit lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `x == NULL` — the *true* edge means `x` is NULL.
    PtrNull(PvarId),
    /// `x == y` — the *true* edge means both point to the same location
    /// (including both NULL).
    PtrEq(PvarId, PvarId),
    /// `v == <lit>` on a tracked scalar — refines when `v`'s constant value
    /// is known, and *learns* the constant on the true edge.
    ScalarEq(ScalarId, i64),
    /// An untracked scalar test: both edges are feasible, no refinement.
    Opaque,
}

/// Block terminators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on a leaf condition.
    Branch {
        /// The condition tested.
        cond: Cond,
        /// Successor when the condition holds.
        then_bb: BlockId,
        /// Successor when it does not.
        else_bb: BlockId,
    },
    /// Function return.
    Return,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Goto(b) => vec![b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![then_bb]
                } else {
                    vec![then_bb, else_bb]
                }
            }
            Terminator::Return => vec![],
        }
    }
}

/// A basic block: a statement list plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements executed in order.
    pub stmts: Vec<StmtId>,
    /// Control transfer at the end.
    pub term: Terminator,
}

/// Metadata of one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// Enclosing loop, if nested.
    pub parent: Option<LoopId>,
    /// The block holding the loop's condition test (header).
    pub header: BlockId,
    /// Induction pointers, filled by [`crate::induction::detect`].
    pub ipvars: Vec<PvarId>,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
}

/// A fully lowered function, ready for symbolic execution.
#[derive(Debug, Clone)]
pub struct FuncIr {
    /// Function name.
    pub name: String,
    /// All pointer variables (program + temporaries).
    pub pvars: Vec<PvarInfo>,
    /// Names of tracked scalar (int) variables, indexed by [`ScalarId`].
    pub scalars: Vec<String>,
    /// All statements, indexed by [`StmtId`].
    pub stmts: Vec<StmtInfo>,
    /// All basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// All loops, indexed by [`LoopId`].
    pub loops: Vec<LoopInfo>,
    /// For each CFG edge that leaves one or more loops, the loops exited
    /// (innermost first). The engine clears those loops' ipvars from every
    /// TOUCH set when crossing the edge.
    pub exit_edges: BTreeMap<(BlockId, BlockId), Vec<LoopId>>,
    /// For each CFG edge that enters a loop from outside, the loops entered.
    /// The engine marks each entered loop's bound ipvars' targets as TOUCHED
    /// on this edge — the element the cursor starts on is the first
    /// iteration's "visited" location, which closes the revisit-detection
    /// hole at the traversal start.
    pub entry_edges: BTreeMap<(BlockId, BlockId), Vec<LoopId>>,
    /// The resolved type universe.
    pub types: TypeTable,
    /// Recursive callees reachable from this function, lowered over the
    /// same pvar/scalar universe. Non-empty only on the root function
    /// produced by [`crate::lower_program`]; [`CallStmt::callee`] indexes
    /// this table.
    pub callees: Vec<CalleeFunc>,
}

impl FuncIr {
    /// Number of pvars.
    pub fn num_pvars(&self) -> usize {
        self.pvars.len()
    }

    /// Pvar id by source name.
    pub fn pvar_id(&self, name: &str) -> Option<PvarId> {
        self.pvars
            .iter()
            .position(|p| p.name == name)
            .map(|i| PvarId(i as u32))
    }

    /// Pvar name by id.
    pub fn pvar_name(&self, id: PvarId) -> &str {
        &self.pvars[id.0 as usize].name
    }

    /// Tracked scalar name by id.
    pub fn scalar_name(&self, id: ScalarId) -> &str {
        &self.scalars[id.0 as usize]
    }

    /// Tracked scalar id by name.
    pub fn scalar_id(&self, name: &str) -> Option<ScalarId> {
        self.scalars
            .iter()
            .position(|s| s == name)
            .map(|i| ScalarId(i as u32))
    }

    /// Pvar metadata by id.
    pub fn pvar(&self, id: PvarId) -> &PvarInfo {
        &self.pvars[id.0 as usize]
    }

    /// Statement metadata by id.
    pub fn stmt(&self, id: StmtId) -> &StmtInfo {
        &self.stmts[id.0 as usize]
    }

    /// Block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Predecessor map, computed on demand.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Loops exited when control flows from `from` to `to` (empty if none).
    pub fn exited_loops(&self, from: BlockId, to: BlockId) -> &[LoopId] {
        self.exit_edges
            .get(&(from, to))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Loops entered when control flows from `from` to `to` (empty if none).
    pub fn entered_loops(&self, from: BlockId, to: BlockId) -> &[LoopId] {
        self.entry_edges
            .get(&(from, to))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All loops enclosing a statement, innermost last.
    pub fn loops_of(&self, stmt: StmtId) -> &[LoopId] {
        &self.stmt(stmt).loops
    }

    /// The union of ipvars of the loops in `loops` (deduplicated, sorted).
    pub fn active_ipvars(&self, loops: &[LoopId]) -> Vec<PvarId> {
        let mut v: Vec<PvarId> = loops
            .iter()
            .flat_map(|l| self.loops[l.0 as usize].ipvars.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total number of pointer statements (for reporting).
    pub fn num_ptr_stmts(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s.stmt, Stmt::Ptr(_)))
            .count()
    }

    /// Basic structural sanity checks; used by tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!("bb{i} has out-of-range successor {s}"));
                }
            }
            for &st in &b.stmts {
                if st.0 as usize >= self.stmts.len() {
                    return Err(format!("bb{i} references out-of-range {st}"));
                }
            }
        }
        if self.entry.0 as usize >= self.blocks.len() {
            return Err("entry block out of range".into());
        }
        for (li, l) in self.loops.iter().enumerate() {
            if l.header.0 as usize >= self.blocks.len() {
                return Err(format!("L{li} header out of range"));
            }
            if let Some(p) = l.parent {
                if p.0 as usize >= self.loops.len() {
                    return Err(format!("L{li} parent out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptr_stmt_def_use() {
        let x = PvarId(0);
        let y = PvarId(1);
        let s = SelectorId(0);
        assert_eq!(PtrStmt::Copy(x, y).def(), Some(x));
        assert_eq!(PtrStmt::Copy(x, y).uses(), vec![y]);
        assert_eq!(PtrStmt::Store(x, s, y).def(), None);
        assert_eq!(PtrStmt::Store(x, s, y).uses(), vec![x, y]);
        assert_eq!(PtrStmt::Nil(x).uses(), Vec::<PvarId>::new());
        assert_eq!(PtrStmt::Load(x, y, s).def(), Some(x));
    }

    use psa_cfront::types::SelectorId;

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Cond::Opaque,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        let same = Terminator::Branch {
            cond: Cond::Opaque,
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        assert_eq!(same.successors(), vec![BlockId(1)]);
        assert_eq!(Terminator::Return.successors(), Vec::<BlockId>::new());
    }
}
