//! Recursive-descent parser for the C subset.
//!
//! Grammar notes:
//! * typedef names are tracked while parsing, so `cell *p;` parses as a
//!   declaration once `typedef struct cell cell;` has been seen;
//! * compound assignments (`+=` etc.), `++`/`--` are desugared to plain
//!   assignments in the AST;
//! * fixed-size arrays are allowed only as struct fields and only with
//!   constant non-negative indices; `q->kids[2]` folds into the expanded
//!   element field `kids[2]`, and nested-struct access `p->pos.x` folds
//!   into the composite field `pos.x`. Local arrays and the address-of
//!   operator on heap fields remain rejected — the analyzed codes use
//!   pure pointer structures and scalars, as in the paper.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use std::collections::HashSet;

/// Parse a complete translation unit.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        typedefs: HashSet::new(),
        depth: 0,
    };
    p.program()
}

/// Nesting ceiling for recursive productions (blocks, expressions). Deeper
/// input — e.g. a pathological 10k-deep parenthesized expression — would
/// overflow the process stack; instead it is rejected with a diagnostic.
const MAX_NESTING: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    typedefs: HashSet<String>,
    depth: usize,
}

impl Parser {
    fn enter(&mut self) -> Result<(), Diagnostic> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(Diagnostic::error(
                self.span(),
                format!("nesting too deep (more than {MAX_NESTING} levels)"),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, Diagnostic> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                self.span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(Diagnostic::error(
                self.span(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    // ---------------------------------------------------------- top level

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut prog = Program::default();
        while *self.peek() != TokenKind::Eof {
            if *self.peek() == TokenKind::KwTypedef {
                prog.typedefs.push(self.typedef_def()?);
                continue;
            }
            if *self.peek() == TokenKind::KwStruct
                && matches!(self.peek_at(1), TokenKind::Ident(_))
                && *self.peek_at(2) == TokenKind::LBrace
            {
                prog.structs.push(self.struct_def()?);
                continue;
            }
            // Otherwise: a type followed by a name, then either `(` (function)
            // or a declarator list (global variable).
            let start = self.span();
            let base = self.type_base()?;
            let (ty, name, nspan) = self.declarator(base.clone())?;
            if *self.peek() == TokenKind::LParen {
                prog.functions.push(self.function_def(ty, name, start)?);
            } else {
                // Global variable(s).
                let d = self.finish_global(ty, name, nspan)?;
                prog.globals.push(d);
                while self.eat(&TokenKind::Comma) {
                    let (ty, name, nspan) = self.declarator(base.clone())?;
                    let d = self.finish_global(ty, name, nspan)?;
                    prog.globals.push(d);
                }
                self.expect(&TokenKind::Semi)?;
            }
        }
        Ok(prog)
    }

    /// Parse the optional `= init` tail of one global declarator.
    fn finish_global(
        &mut self,
        ty: TypeExpr,
        name: String,
        span: Span,
    ) -> Result<Decl, Diagnostic> {
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr_no_assign()?)
        } else {
            None
        };
        Ok(Decl {
            name,
            ty,
            init,
            span,
        })
    }

    fn typedef_def(&mut self) -> Result<TypedefDef, Diagnostic> {
        let start = self.span();
        self.expect(&TokenKind::KwTypedef)?;
        let base = self.type_base()?;
        let (ty, name, _) = self.declarator(base)?;
        self.expect(&TokenKind::Semi)?;
        self.typedefs.insert(name.clone());
        Ok(TypedefDef {
            name,
            ty,
            span: start,
        })
    }

    fn struct_def(&mut self) -> Result<StructDef, Diagnostic> {
        let start = self.span();
        self.expect(&TokenKind::KwStruct)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let base = self.type_base()?;
            loop {
                let (ty, fname, fspan) = self.field_declarator(base.clone())?;
                fields.push(Field {
                    name: fname,
                    ty,
                    span: fspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Semi)?;
        }
        self.expect(&TokenKind::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start,
        })
    }

    fn function_def(
        &mut self,
        ret: TypeExpr,
        name: String,
        span: Span,
    ) -> Result<Function, Diagnostic> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            if *self.peek() == TokenKind::KwVoid && *self.peek_at(1) == TokenKind::RParen {
                self.bump();
                self.expect(&TokenKind::RParen)?;
            } else {
                loop {
                    let base = self.type_base()?;
                    let (ty, pname, _) = self.declarator(base)?;
                    params.push(Param { name: pname, ty });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            body.push(self.stmt()?);
        }
        Ok(Function {
            name,
            ret,
            params,
            body,
            span,
        })
    }

    // ---------------------------------------------------------- types

    /// True if the current token can begin a type.
    fn at_type(&self) -> bool {
        match self.peek() {
            TokenKind::KwStruct
            | TokenKind::KwInt
            | TokenKind::KwLong
            | TokenKind::KwShort
            | TokenKind::KwUnsigned
            | TokenKind::KwSigned
            | TokenKind::KwDouble
            | TokenKind::KwFloat
            | TokenKind::KwChar
            | TokenKind::KwVoid => true,
            TokenKind::Ident(name) => self.typedefs.contains(name),
            _ => false,
        }
    }

    /// Parse a base type (no pointer stars).
    fn type_base(&mut self) -> Result<TypeExpr, Diagnostic> {
        let t = self.bump();
        match t.kind {
            TokenKind::KwVoid => Ok(TypeExpr::Void),
            TokenKind::KwDouble | TokenKind::KwFloat => Ok(TypeExpr::Double),
            TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwShort => Ok(TypeExpr::Int),
            TokenKind::KwLong | TokenKind::KwUnsigned | TokenKind::KwSigned => {
                // Swallow multi-keyword integer types: `unsigned long int` etc.
                while matches!(
                    self.peek(),
                    TokenKind::KwInt
                        | TokenKind::KwLong
                        | TokenKind::KwShort
                        | TokenKind::KwChar
                        | TokenKind::KwUnsigned
                        | TokenKind::KwSigned
                ) {
                    self.bump();
                }
                Ok(TypeExpr::Int)
            }
            TokenKind::KwStruct => {
                let (name, _) = self.expect_ident()?;
                Ok(TypeExpr::Struct(name))
            }
            TokenKind::Ident(name) if self.typedefs.contains(&name) => Ok(TypeExpr::Named(name)),
            other => Err(Diagnostic::error(
                t.span,
                format!("expected a type, found {}", other.describe()),
            )),
        }
    }

    /// Parse `* * name` after a base type; returns (full type, name, span).
    fn declarator(&mut self, base: TypeExpr) -> Result<(TypeExpr, String, Span), Diagnostic> {
        let mut depth = 0;
        while self.eat(&TokenKind::Star) {
            depth += 1;
        }
        let (name, span) = self.expect_ident()?;
        if *self.peek() == TokenKind::LBracket {
            return Err(Diagnostic::error(
                self.span(),
                "array declarators are supported only as struct fields in this C subset",
            ));
        }
        Ok((base.pointer_to(depth), name, span))
    }

    /// [`Self::declarator`] for struct fields, where a fixed-size array
    /// suffix (`T *name[N]`) is allowed; the type table expands it into
    /// element fields `name[0]` … `name[N-1]`.
    fn field_declarator(&mut self, base: TypeExpr) -> Result<(TypeExpr, String, Span), Diagnostic> {
        let mut depth = 0;
        while self.eat(&TokenKind::Star) {
            depth += 1;
        }
        let (name, span) = self.expect_ident()?;
        let mut ty = base.pointer_to(depth);
        if self.eat(&TokenKind::LBracket) {
            let n = match self.bump() {
                Token {
                    kind: TokenKind::IntLit(v),
                    ..
                } if v > 0 => v as u32,
                t => {
                    return Err(Diagnostic::error(
                        t.span,
                        "array fields need a positive integer-literal size",
                    ));
                }
            };
            self.expect(&TokenKind::RBracket)?;
            ty = TypeExpr::Array(Box::new(ty), n);
        }
        Ok((ty, name, span))
    }

    /// Parse a full type expression (base + stars), for casts and sizeof.
    fn type_expr(&mut self) -> Result<TypeExpr, Diagnostic> {
        let base = self.type_base()?;
        let mut depth = 0;
        while self.eat(&TokenKind::Star) {
            depth += 1;
        }
        Ok(base.pointer_to(depth))
    }

    // ---------------------------------------------------------- statements

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty(span))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts, span))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr_no_assign()?;
                self.expect(&TokenKind::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&TokenKind::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els, span))
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr_no_assign()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While(cond, body, span))
            }
            TokenKind::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&TokenKind::KwWhile)?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr_no_assign()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::DoWhile(body, cond, span))
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if *self.peek() == TokenKind::Semi {
                    self.bump();
                    None
                } else if self.at_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr_no_assign()?)
                };
                self.expect(&TokenKind::Semi)?;
                let step = if *self.peek() == TokenKind::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For(init, cond, step, body, span))
            }
            TokenKind::KwSwitch => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let scrutinee = self.expr_no_assign()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::LBrace)?;
                let mut arms: Vec<(Option<i64>, Vec<Stmt>)> = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    let label = match self.peek().clone() {
                        TokenKind::KwCase => {
                            self.bump();
                            let neg = self.eat(&TokenKind::Minus);
                            let v = match self.bump() {
                                Token {
                                    kind: TokenKind::IntLit(v),
                                    ..
                                } => v,
                                t => {
                                    return Err(Diagnostic::error(
                                        t.span,
                                        "`case` labels must be integer literals",
                                    ));
                                }
                            };
                            Some(if neg { -v } else { v })
                        }
                        TokenKind::KwDefault => {
                            self.bump();
                            None
                        }
                        other => {
                            return Err(Diagnostic::error(
                                self.span(),
                                format!("expected `case` or `default`, found {}", other.describe()),
                            ));
                        }
                    };
                    self.expect(&TokenKind::Colon)?;
                    let mut body = Vec::new();
                    let mut terminated = false;
                    loop {
                        match self.peek() {
                            TokenKind::KwCase | TokenKind::KwDefault | TokenKind::RBrace => break,
                            TokenKind::KwBreak => {
                                self.bump();
                                self.expect(&TokenKind::Semi)?;
                                terminated = true;
                                break;
                            }
                            _ => body.push(self.stmt()?),
                        }
                    }
                    // No fallthrough in the subset: a non-final arm must end
                    // in `break` (or `return` inside its body).
                    if !terminated
                        && *self.peek() != TokenKind::RBrace
                        && !matches!(body.last(), Some(Stmt::Return(_, _)))
                    {
                        return Err(Diagnostic::error(
                            self.span(),
                            "switch arms must end with `break` (fallthrough is                              outside the C subset)",
                        ));
                    }
                    arms.push((label, body));
                }
                Ok(Stmt::Switch(scrutinee, arms, span))
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr_no_assign()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(e, span))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue(span))
            }
            _ if self.at_type() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// A declaration statement, possibly with several declarators. Multiple
    /// declarators become a block of single declarations.
    fn decl_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        let base = self.type_base()?;
        let mut decls = Vec::new();
        loop {
            let (ty, name, nspan) = self.declarator(base.clone())?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr_no_assign()?)
            } else {
                None
            };
            decls.push(Stmt::Decl(Decl {
                name,
                ty,
                init,
                span: nspan,
            }));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi)?;
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt::Block(decls, span))
        }
    }

    // ---------------------------------------------------------- expressions

    /// Full expression including assignment.
    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.expr_no_assign()?;
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Assign => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Expr::Assign(Box::new(lhs), Box::new(rhs), span))
            }
            TokenKind::PlusAssign
            | TokenKind::MinusAssign
            | TokenKind::StarAssign
            | TokenKind::SlashAssign => {
                let op = match self.bump().kind {
                    TokenKind::PlusAssign => BinOp::Add,
                    TokenKind::MinusAssign => BinOp::Sub,
                    TokenKind::StarAssign => BinOp::Mul,
                    TokenKind::SlashAssign => BinOp::Div,
                    _ => unreachable!(),
                };
                let rhs = self.expr_no_assign()?;
                let sum = Expr::Binary(op, Box::new(lhs.clone()), Box::new(rhs), span);
                Ok(Expr::Assign(Box::new(lhs), Box::new(sum), span))
            }
            _ => Ok(lhs),
        }
    }

    /// Expression excluding top-level assignment (conditions, initializers).
    fn expr_no_assign(&mut self) -> Result<Expr, Diagnostic> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, Diagnostic> {
        let c = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let span = c.span();
            let a = self.expr_no_assign()?;
            self.expect(&TokenKind::Colon)?;
            let b = self.expr_no_assign()?;
            Ok(Expr::Cond(Box::new(c), Box::new(a), Box::new(b), span))
        } else {
            Ok(c)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::OrOr {
            let span = self.bump().span;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.equality()?;
        while *self.peek() == TokenKind::AndAnd {
            let span = self.bump().span;
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        self.enter()?;
        let r = self.unary_inner();
        self.leave();
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), span))
            }
            TokenKind::Not => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e), span))
            }
            TokenKind::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Deref, Box::new(e), span))
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::AddrOf, Box::new(e), span))
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                // Prefix increment: ++x desugars to x = x + 1.
                let op = if *self.peek() == TokenKind::PlusPlus {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                self.bump();
                let e = self.unary()?;
                let one = Expr::IntLit(1, span);
                let sum = Expr::Binary(op, Box::new(e.clone()), Box::new(one), span);
                Ok(Expr::Assign(Box::new(e), Box::new(sum), span))
            }
            TokenKind::KwSizeof => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let ty = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::SizeOf(ty, span))
            }
            TokenKind::LParen if self.type_follows() => {
                self.bump();
                let ty = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                let e = self.unary()?;
                Ok(Expr::Cast(ty, Box::new(e), span))
            }
            _ => self.postfix(),
        }
    }

    /// True if a cast's type begins right after the current `(`.
    fn type_follows(&self) -> bool {
        match self.peek_at(1) {
            TokenKind::KwStruct
            | TokenKind::KwInt
            | TokenKind::KwLong
            | TokenKind::KwShort
            | TokenKind::KwUnsigned
            | TokenKind::KwSigned
            | TokenKind::KwDouble
            | TokenKind::KwFloat
            | TokenKind::KwChar
            | TokenKind::KwVoid => true,
            TokenKind::Ident(name) => self.typedefs.contains(name),
            _ => false,
        }
    }

    fn postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                TokenKind::Dot => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    // A dot access hanging off a member access is a nested
                    // struct-by-value field: fold it into the parent access
                    // with the composite name the type table expands to
                    // (`p->pos.x` reads field `pos.x` of `*p`).
                    e = match e {
                        Expr::Member(base, f, arrow, mspan) => {
                            Expr::Member(base, format!("{f}.{name}"), arrow, mspan)
                        }
                        other => Expr::Member(Box::new(other), name, false, span),
                    };
                }
                TokenKind::Arrow => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    e = Expr::Member(Box::new(e), name, true, span);
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    // Postfix increment, statement-position only: desugar to
                    // assignment (the produced value difference from C does
                    // not matter because the subset forbids using it).
                    let op = if *self.peek() == TokenKind::PlusPlus {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    self.bump();
                    let one = Expr::IntLit(1, span);
                    let sum = Expr::Binary(op, Box::new(e.clone()), Box::new(one), span);
                    e = Expr::Assign(Box::new(e), Box::new(sum), span);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr_no_assign()?;
                    self.expect(&TokenKind::RBracket)?;
                    // Constant index into an array struct field folds into
                    // the expanded element-field name (`q->kids[2]` reads
                    // field `kids[2]`). Anything else — local arrays,
                    // variable indices — is outside the subset.
                    e = match (e, idx) {
                        (Expr::Member(base, f, arrow, mspan), Expr::IntLit(k, _)) if k >= 0 => {
                            Expr::Member(base, format!("{f}[{k}]"), arrow, mspan)
                        }
                        _ => {
                            return Err(Diagnostic::error(
                                span,
                                "array indexing is supported only on struct fields \
                                 with constant non-negative indices",
                            ));
                        }
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        let t = self.bump();
        match t.kind {
            TokenKind::IntLit(v) => Ok(Expr::IntLit(v, t.span)),
            TokenKind::FloatLit(v) => Ok(Expr::FloatLit(v, t.span)),
            TokenKind::StrLit(s) => Ok(Expr::StrLit(s, t.span)),
            TokenKind::CharLit(v) => Ok(Expr::IntLit(v, t.span)),
            TokenKind::KwNull => Ok(Expr::Null(t.span)),
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr_no_assign()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Ok(Expr::Call(name, args, t.span))
                } else {
                    Ok(Expr::Ident(name, t.span))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::error(
                t.span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_main(body: &str) -> Program {
        let src = format!(
            "struct node {{ int v; struct node *nxt; struct node *prv; }};\n\
             int main() {{ {body} return 0; }}"
        );
        parse(&src).expect("parse")
    }

    #[test]
    fn deep_paren_expression_errors_instead_of_overflowing() {
        // A ~10k-deep parenthesized expression must come back as a
        // diagnostic, not blow the process stack.
        let deep = format!("int x; x = {}1{};", "(".repeat(10_000), ")".repeat(10_000));
        let src = format!("int main() {{ {deep} return 0; }}");
        let err = parse(&src).expect_err("deep nesting must be rejected");
        assert!(
            err.to_string().contains("nesting too deep"),
            "unexpected diagnostic: {err}"
        );
    }

    #[test]
    fn deep_block_nesting_errors_instead_of_overflowing() {
        let src = format!(
            "int main() {{ {} {} return 0; }}",
            "{".repeat(10_000),
            "}".repeat(10_000)
        );
        let err = parse(&src).expect_err("deep blocks must be rejected");
        assert!(err.to_string().contains("nesting too deep"));
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let expr = format!("{}1{}", "(".repeat(100), ")".repeat(100));
        parse_main(&format!("int x; x = {expr};"));
    }

    #[test]
    fn parses_struct_with_pointer_fields() {
        let p = parse_main("");
        let s = p.struct_def("node").unwrap();
        assert_eq!(s.fields.len(), 3);
        assert!(s.fields[1].ty.is_pointer());
        assert_eq!(s.fields[1].name, "nxt");
    }

    #[test]
    fn parses_malloc_cast() {
        let p = parse_main("struct node *x; x = (struct node *) malloc(sizeof(struct node));");
        let f = p.function("main").unwrap();
        // Decl + Expr + Return
        assert_eq!(f.body.len(), 3);
        match &f.body[1] {
            Stmt::Expr(Expr::Assign(lhs, rhs, _)) => {
                assert!(matches!(**lhs, Expr::Ident(ref n, _) if n == "x"));
                match &**rhs {
                    Expr::Cast(TypeExpr::Pointer(inner), call, _) => {
                        assert_eq!(**inner, TypeExpr::Struct("node".into()));
                        assert!(matches!(**call, Expr::Call(ref n, _, _) if n == "malloc"));
                    }
                    other => panic!("expected cast of malloc, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_member_chain() {
        let p = parse_main("struct node *x; x->nxt->prv = x;");
        let f = p.function("main").unwrap();
        match &f.body[1] {
            Stmt::Expr(Expr::Assign(lhs, _, _)) => match &**lhs {
                Expr::Member(inner, f2, true, _) => {
                    assert_eq!(f2, "prv");
                    assert!(matches!(**inner, Expr::Member(_, ref f1, true, _) if f1 == "nxt"));
                }
                other => panic!("expected member chain, got {other:?}"),
            },
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn while_with_null_test() {
        let p = parse_main("struct node *x; while (x != NULL) { x = x->nxt; }");
        let f = p.function("main").unwrap();
        assert!(matches!(f.body[1], Stmt::While(..)));
    }

    #[test]
    fn for_loop_with_increment() {
        let p = parse_main("int i; for (i = 0; i < 10; i++) { i = i; }");
        let f = p.function("main").unwrap();
        match &f.body[1] {
            Stmt::For(init, cond, step, _, _) => {
                assert!(init.is_some());
                assert!(cond.is_some());
                // i++ desugars into an assignment
                assert!(matches!(step, Some(Expr::Assign(..))));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn typedef_names_parse_as_types() {
        let src = r#"
            struct cell { int v; struct cell *nxt; };
            typedef struct cell cell_t;
            int main() { cell_t *p; p = NULL; return 0; }
        "#;
        let p = parse(src).unwrap();
        let f = p.function("main").unwrap();
        match &f.body[0] {
            Stmt::Decl(d) => {
                assert_eq!(
                    d.ty,
                    TypeExpr::Pointer(Box::new(TypeExpr::Named("cell_t".into())))
                );
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn multiple_declarators_split() {
        let p = parse_main("struct node *a, *b; int i, j = 3;");
        let f = p.function("main").unwrap();
        // Two blocks (each multi-declarator decl) + return.
        assert_eq!(f.body.len(), 3);
        assert!(matches!(&f.body[0], Stmt::Block(v, _) if v.len() == 2));
        match &f.body[1] {
            Stmt::Block(v, _) => match &v[1] {
                Stmt::Decl(d) => {
                    assert_eq!(d.name, "j");
                    assert!(d.init.is_some());
                }
                other => panic!("expected decl, got {other:?}"),
            },
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn compound_assign_desugars() {
        let p = parse_main("int i; i += 2;");
        let f = p.function("main").unwrap();
        match &f.body[1] {
            Stmt::Expr(Expr::Assign(_, rhs, _)) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Add, _, _, _)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn if_else_chain() {
        let p = parse_main("int i; if (i < 0) i = 0; else if (i > 9) i = 9; else i = 1;");
        let f = p.function("main").unwrap();
        match &f.body[1] {
            Stmt::If(_, _, Some(els), _) => assert!(matches!(**els, Stmt::If(..))),
            other => panic!("expected if/else, got {other:?}"),
        }
    }

    #[test]
    fn do_while_parses() {
        let p = parse_main("int i; do { i = i + 1; } while (i < 3);");
        let f = p.function("main").unwrap();
        assert!(matches!(f.body[1], Stmt::DoWhile(..)));
    }

    #[test]
    fn function_with_params() {
        let src = "int add(int a, int b) { return a + b; } int main() { return 0; }";
        let p = parse(src).unwrap();
        let f = p.function("add").unwrap();
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn global_variables() {
        let src =
            "struct node { int v; }; struct node *Lbodies; int N = 8; int main() { return 0; }";
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 2);
        assert!(p.globals[0].ty.is_pointer());
        assert!(p.globals[1].init.is_some());
    }

    #[test]
    fn array_rejected() {
        let src = "int main() { int a[10]; return 0; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn array_struct_field_parses_with_size() {
        let src = "struct quad { struct quad *kids[4]; }; int main() { return 0; }";
        let p = parse(src).unwrap();
        let s = p.struct_def("quad").unwrap();
        assert_eq!(s.fields.len(), 1);
        match &s.fields[0].ty {
            TypeExpr::Array(elem, 4) => assert!(elem.is_pointer()),
            other => panic!("expected array field type, got {other:?}"),
        }
    }

    #[test]
    fn zero_sized_array_field_rejected() {
        let src = "struct quad { struct quad *kids[0]; }; int main() { return 0; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn constant_index_on_member_folds_into_composite_field() {
        let src = "struct quad { struct quad *kids[4]; }; \
                   int main() { struct quad *q; struct quad *c; c = q->kids[2]; return 0; }";
        let p = parse(src).unwrap();
        let f = p.function("main").unwrap();
        match &f.body[2] {
            Stmt::Expr(Expr::Assign(_, rhs, _)) => match &**rhs {
                Expr::Member(_, field, true, _) => assert_eq!(field, "kids[2]"),
                other => panic!("expected folded member, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn variable_index_rejected() {
        let src = "struct quad { struct quad *kids[4]; }; \
                   int main() { struct quad *q; int i; q = q->kids[i]; return 0; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn dot_on_arrow_member_folds_into_composite_field() {
        let src = "struct pt { double x; double y; }; \
                   struct site { struct pt pos; }; \
                   int main() { struct site *s; double d; d = s->pos.x; return 0; }";
        let p = parse(src).unwrap();
        let f = p.function("main").unwrap();
        match &f.body[2] {
            Stmt::Expr(Expr::Assign(_, rhs, _)) => match &**rhs {
                Expr::Member(_, field, true, _) => assert_eq!(field, "pos.x"),
                other => panic!("expected folded member, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn ternary_parses() {
        let p = parse_main("int i; i = (i < 3) ? 1 : 2;");
        let f = p.function("main").unwrap();
        match &f.body[1] {
            Stmt::Expr(Expr::Assign(_, rhs, _)) => {
                assert!(matches!(**rhs, Expr::Cond(..)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_main("int i; i = 1 + 2 * 3;");
        let f = p.function("main").unwrap();
        match &f.body[1] {
            Stmt::Expr(Expr::Assign(_, rhs, _)) => match &**rhs {
                Expr::Binary(BinOp::Add, _, r, _) => {
                    assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn calls_with_string_args() {
        let p = parse_main(r#"printf("%d\n", 3);"#);
        let f = p.function("main").unwrap();
        assert!(
            matches!(&f.body[0], Stmt::Expr(Expr::Call(n, args, _)) if n == "printf" && args.len() == 2)
        );
    }
}
