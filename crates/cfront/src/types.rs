//! Type table: typedef resolution, struct layouts, and the selector universe.
//!
//! The shape analysis works over **struct types** and their **selectors** —
//! the pointer-to-struct fields — exactly the `S` set of the paper's
//! `RSG = (N, P, S, PL, NL)` tuple. This module resolves the syntactic
//! [`TypeExpr`]s of the AST into compact semantic [`SemType`]s, assigns every
//! struct a [`StructId`] and every distinct pointer field name a [`SelectorId`]
//! (selectors are identified by name across structs, as in the paper where
//! `nxt`, `prv`, `child`, `body` are global selector names).

use crate::ast::{Program, TypeExpr};
use crate::diag::{Diagnostic, Span};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a struct type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// Identifier of a selector (a pointer-to-struct field name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SelectorId(pub u32);

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for SelectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A fully resolved semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SemType {
    /// `void`
    Void,
    /// Any integer.
    Int,
    /// Any floating-point number.
    Double,
    /// A struct value (not a pointer).
    Struct(StructId),
    /// Pointer to a type.
    Pointer(Box<SemType>),
}

impl SemType {
    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, SemType::Pointer(_))
    }

    /// If this is `struct T *`, return `T`'s id.
    pub fn pointee_struct(&self) -> Option<StructId> {
        match self {
            SemType::Pointer(inner) => match **inner {
                SemType::Struct(id) => Some(id),
                _ => None,
            },
            _ => None,
        }
    }

    /// True for scalar (non-pointer, non-struct) types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, SemType::Int | SemType::Double | SemType::Void)
    }
}

/// One resolved struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Resolved field type.
    pub ty: SemType,
    /// For pointer-to-struct fields: the selector id.
    pub selector: Option<SelectorId>,
}

/// A resolved struct type.
#[derive(Debug, Clone, PartialEq)]
pub struct StructInfo {
    /// Struct tag.
    pub name: String,
    /// Resolved fields, in declaration order.
    pub fields: Vec<FieldInfo>,
}

impl StructInfo {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Iterate over this struct's selectors (pointer-to-struct fields).
    pub fn selectors(&self) -> impl Iterator<Item = SelectorId> + '_ {
        self.fields.iter().filter_map(|f| f.selector)
    }
}

/// The resolved type universe of a program.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    structs: Vec<StructInfo>,
    struct_ids: BTreeMap<String, StructId>,
    selectors: Vec<String>,
    selector_ids: BTreeMap<String, SelectorId>,
    typedefs: BTreeMap<String, SemType>,
}

impl TypeTable {
    /// Build the table from a parsed program.
    ///
    /// Struct bodies may reference structs declared later (or themselves)
    /// through pointers, so ids are assigned in a first pass and bodies are
    /// resolved in a second.
    pub fn build(program: &Program) -> Result<TypeTable, Diagnostic> {
        let mut table = TypeTable::default();
        // Pass 1: assign struct ids.
        for s in &program.structs {
            if table.struct_ids.contains_key(&s.name) {
                return Err(Diagnostic::error(
                    s.span,
                    format!("duplicate struct `{}`", s.name),
                ));
            }
            let id = StructId(table.structs.len() as u32);
            table.struct_ids.insert(s.name.clone(), id);
            table.structs.push(StructInfo {
                name: s.name.clone(),
                fields: Vec::new(),
            });
        }
        // Typedefs are resolved in order (they may reference earlier typedefs
        // and any struct).
        for td in &program.typedefs {
            let ty = table.resolve(&td.ty, td.span)?;
            table.typedefs.insert(td.name.clone(), ty);
        }
        // Pass 2: resolve fields and assign selector ids. Array fields
        // expand into one field per element (`kids[0]` …) and
        // struct-by-value fields inline the embedded struct's already
        // resolved fields under composite names (`pos.x`), so downstream
        // layers only ever see scalar and pointer fields. Declaration
        // order doubles as the resolution order, which is exactly C's
        // complete-type requirement for by-value embedding.
        let mut resolved: Vec<bool> = vec![false; table.structs.len()];
        for s in &program.structs {
            let sid = table.struct_ids[&s.name];
            let mut fields = Vec::with_capacity(s.fields.len());
            for f in &s.fields {
                let (elem_ty, count) = match &f.ty {
                    TypeExpr::Array(elem, n) => (table.resolve(elem, f.span)?, Some(*n)),
                    other => (table.resolve(other, f.span)?, None),
                };
                if let SemType::Struct(inner) = elem_ty {
                    if count.is_some() {
                        return Err(Diagnostic::error(
                            f.span,
                            format!(
                                "field `{}`: arrays of struct values are not supported \
                                 (use an array of pointers)",
                                f.name
                            ),
                        ));
                    }
                    if !resolved[inner.0 as usize] {
                        return Err(Diagnostic::error(
                            f.span,
                            format!(
                                "field `{}` embeds `struct {}` by value before its \
                                 definition is complete",
                                f.name, table.structs[inner.0 as usize].name
                            ),
                        ));
                    }
                    // Inline the embedded struct's (already expanded) fields.
                    let inner_fields = table.structs[inner.0 as usize].fields.clone();
                    for g in inner_fields {
                        let name = format!("{}.{}", f.name, g.name);
                        let selector = if g.ty.pointee_struct().is_some() {
                            Some(table.intern_selector(&name))
                        } else {
                            None
                        };
                        fields.push(FieldInfo {
                            name,
                            ty: g.ty,
                            selector,
                        });
                    }
                    continue;
                }
                let names: Vec<String> = match count {
                    Some(n) => (0..n).map(|k| format!("{}[{k}]", f.name)).collect(),
                    None => vec![f.name.clone()],
                };
                for name in names {
                    let selector = if elem_ty.pointee_struct().is_some() {
                        Some(table.intern_selector(&name))
                    } else {
                        None
                    };
                    fields.push(FieldInfo {
                        name,
                        ty: elem_ty.clone(),
                        selector,
                    });
                }
            }
            table.structs[sid.0 as usize].fields = fields;
            resolved[sid.0 as usize] = true;
        }
        Ok(table)
    }

    fn intern_selector(&mut self, name: &str) -> SelectorId {
        if let Some(&id) = self.selector_ids.get(name) {
            return id;
        }
        let id = SelectorId(self.selectors.len() as u32);
        self.selectors.push(name.to_string());
        self.selector_ids.insert(name.to_string(), id);
        id
    }

    /// Resolve a syntactic type to a semantic one.
    pub fn resolve(&self, ty: &TypeExpr, span: Span) -> Result<SemType, Diagnostic> {
        Ok(match ty {
            TypeExpr::Void => SemType::Void,
            TypeExpr::Int => SemType::Int,
            TypeExpr::Double => SemType::Double,
            TypeExpr::Struct(name) => {
                let id = self
                    .struct_ids
                    .get(name)
                    .ok_or_else(|| Diagnostic::error(span, format!("unknown struct `{name}`")))?;
                SemType::Struct(*id)
            }
            TypeExpr::Named(name) => self
                .typedefs
                .get(name)
                .cloned()
                .ok_or_else(|| Diagnostic::error(span, format!("unknown type `{name}`")))?,
            TypeExpr::Pointer(inner) => SemType::Pointer(Box::new(self.resolve(inner, span)?)),
            TypeExpr::Array(_, _) => {
                return Err(Diagnostic::error(
                    span,
                    "array types are supported only as struct fields",
                ))
            }
        })
    }

    /// The id of a struct by tag.
    pub fn struct_id(&self, name: &str) -> Option<StructId> {
        self.struct_ids.get(name).copied()
    }

    /// Struct info by id.
    pub fn struct_info(&self, id: StructId) -> &StructInfo {
        &self.structs[id.0 as usize]
    }

    /// Number of struct types.
    pub fn num_structs(&self) -> usize {
        self.structs.len()
    }

    /// Number of distinct selectors in the program.
    pub fn num_selectors(&self) -> usize {
        self.selectors.len()
    }

    /// Selector id by field name.
    pub fn selector_id(&self, name: &str) -> Option<SelectorId> {
        self.selector_ids.get(name).copied()
    }

    /// Selector name by id.
    pub fn selector_name(&self, id: SelectorId) -> &str {
        &self.selectors[id.0 as usize]
    }

    /// All selectors declared by `sid` (pointer-to-struct fields), sorted.
    pub fn selectors_of(&self, sid: StructId) -> Vec<SelectorId> {
        let mut v: Vec<_> = self.struct_info(sid).selectors().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// For struct `sid`, the struct its selector `sel` points to, if declared.
    pub fn selector_target(&self, sid: StructId, sel: SelectorId) -> Option<StructId> {
        self.struct_info(sid)
            .fields
            .iter()
            .find(|f| f.selector == Some(sel))
            .and_then(|f| f.ty.pointee_struct())
    }

    /// Iterate `(id, info)` over all structs.
    pub fn iter_structs(&self) -> impl Iterator<Item = (StructId, &StructInfo)> {
        self.structs
            .iter()
            .enumerate()
            .map(|(i, s)| (StructId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table(src: &str) -> TypeTable {
        let p = parse(src).unwrap();
        TypeTable::build(&p).unwrap()
    }

    #[test]
    fn self_referential_struct() {
        let t = table("struct node { int v; struct node *nxt; }; int main() { return 0; }");
        let id = t.struct_id("node").unwrap();
        let sel = t.selector_id("nxt").unwrap();
        assert_eq!(t.selector_target(id, sel), Some(id));
        assert_eq!(t.num_selectors(), 1);
    }

    #[test]
    fn forward_reference_between_structs() {
        let t = table(
            "struct a { struct b *to_b; }; struct b { struct a *to_a; };\n\
             int main() { return 0; }",
        );
        let a = t.struct_id("a").unwrap();
        let b = t.struct_id("b").unwrap();
        assert_eq!(
            t.selector_target(a, t.selector_id("to_b").unwrap()),
            Some(b)
        );
        assert_eq!(
            t.selector_target(b, t.selector_id("to_a").unwrap()),
            Some(a)
        );
    }

    #[test]
    fn selector_names_shared_across_structs() {
        let t = table(
            "struct x { struct x *nxt; }; struct y { struct y *nxt; };\n\
             int main() { return 0; }",
        );
        // One selector id `nxt`, used by both structs.
        assert_eq!(t.num_selectors(), 1);
        let sel = t.selector_id("nxt").unwrap();
        assert_eq!(
            t.selector_target(t.struct_id("x").unwrap(), sel),
            Some(t.struct_id("x").unwrap())
        );
        assert_eq!(
            t.selector_target(t.struct_id("y").unwrap(), sel),
            Some(t.struct_id("y").unwrap())
        );
    }

    #[test]
    fn scalar_fields_are_not_selectors() {
        let t = table(
            "struct node { int v; double w; struct node *nxt; };\n\
             int main() { return 0; }",
        );
        let info = t.struct_info(t.struct_id("node").unwrap());
        assert_eq!(info.fields.len(), 3);
        assert!(info.field("v").unwrap().selector.is_none());
        assert!(info.field("w").unwrap().selector.is_none());
        assert!(info.field("nxt").unwrap().selector.is_some());
    }

    #[test]
    fn typedef_resolution() {
        let t = table(
            "struct cell { struct cell *nxt; }; typedef struct cell *list;\n\
             int main() { return 0; }",
        );
        let resolved = t
            .resolve(&TypeExpr::Named("list".into()), Span::SYNTH)
            .unwrap();
        assert_eq!(resolved.pointee_struct(), t.struct_id("cell"));
    }

    #[test]
    fn duplicate_struct_rejected() {
        let p =
            parse("struct a { int v; }; struct a { int w; }; int main() { return 0; }").unwrap();
        assert!(TypeTable::build(&p).is_err());
    }

    #[test]
    fn struct_by_value_field_expands_into_composite_scalars() {
        let t = table(
            "struct pt { double x; double y; }; \
             struct site { struct pt pos; struct site *nxt; }; \
             int main() { return 0; }",
        );
        let sid = t.struct_id("site").unwrap();
        let names: Vec<&str> = t
            .struct_info(sid)
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["pos.x", "pos.y", "nxt"]);
        assert!(t
            .struct_info(sid)
            .field("pos.x")
            .unwrap()
            .selector
            .is_none());
        assert!(t.struct_info(sid).field("nxt").unwrap().selector.is_some());
    }

    #[test]
    fn struct_by_value_embedding_inlines_pointer_fields_with_fresh_selectors() {
        let t = table(
            "struct link { struct link *ptr; }; \
             struct node { struct link fwd; struct link bwd; }; \
             int main() { return 0; }",
        );
        let sid = t.struct_id("node").unwrap();
        let f = t.struct_info(sid).field("fwd.ptr").unwrap();
        let b = t.struct_info(sid).field("bwd.ptr").unwrap();
        assert!(f.selector.is_some() && b.selector.is_some());
        assert_ne!(f.selector, b.selector);
    }

    #[test]
    fn struct_by_value_forward_embed_rejected() {
        let p =
            parse("struct b { struct a inner; }; struct a { int v; }; int main() { return 0; }")
                .unwrap();
        assert!(TypeTable::build(&p).is_err());
    }

    #[test]
    fn array_field_expands_into_element_fields() {
        let t = table("struct quad { struct quad *kids[4]; int tag; }; int main() { return 0; }");
        let sid = t.struct_id("quad").unwrap();
        let info = t.struct_info(sid);
        let names: Vec<&str> = info.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["kids[0]", "kids[1]", "kids[2]", "kids[3]", "tag"]
        );
        for k in 0..4 {
            let f = info.field(&format!("kids[{k}]")).unwrap();
            assert!(
                f.selector.is_some(),
                "kids[{k}] should be a pointer selector"
            );
        }
        assert!(info.field("tag").unwrap().selector.is_none());
    }

    #[test]
    fn array_of_struct_values_rejected() {
        let p =
            parse("struct a { int v; }; struct b { struct a inner[3]; }; int main() { return 0; }")
                .unwrap();
        assert!(TypeTable::build(&p).is_err());
    }

    #[test]
    fn unknown_struct_in_field_rejected() {
        let p = parse("struct a { struct nope *p; }; int main() { return 0; }").unwrap();
        assert!(TypeTable::build(&p).is_err());
    }

    #[test]
    fn double_pointer_resolves() {
        let t = table("struct n { struct n *nxt; }; int main() { return 0; }");
        let ty = t
            .resolve(&TypeExpr::Struct("n".into()).pointer_to(2), Span::SYNTH)
            .unwrap();
        assert!(ty.is_pointer());
        assert_eq!(ty.pointee_struct(), None); // pointer to pointer, not to struct
    }
}
