//! Hand-written lexer for the C subset.
//!
//! Handles `//` and `/* */` comments, preprocessor lines (`#include`,
//! `#define` of simple constants is *not* expanded — lines starting with `#`
//! are skipped, which is enough for the benchmark codes), and the full token
//! set in [`crate::token::TokenKind`].

use crate::diag::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Lex `src` into a token vector terminated by [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        out.push(tok);
        if done {
            break;
        }
    }
    Ok(out)
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0, self.pos, start.1, start.2)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') if self.col == 1 || self.at_line_start() => {
                    // Preprocessor directive: skip to end of (logical) line.
                    while let Some(c) = self.peek() {
                        if c == b'\\' && self.peek2() == Some(b'\n') {
                            self.bump();
                            self.bump();
                            continue;
                        }
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Diagnostic::error(
                                    self.span_from(start),
                                    "unterminated block comment",
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn at_line_start(&self) -> bool {
        // True if only whitespace precedes `pos` on this line.
        let mut i = self.pos;
        while i > 0 {
            let c = self.src[i - 1];
            if c == b'\n' {
                return true;
            }
            if !c.is_ascii_whitespace() {
                return false;
            }
            i -= 1;
        }
        true
    }

    fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let start = self.here();
        let c = match self.peek() {
            None => {
                return Ok(Token {
                    kind: TokenKind::Eof,
                    span: self.span_from(start),
                });
            }
            Some(c) => c,
        };

        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident_or_keyword(start));
        }
        if c.is_ascii_digit() {
            return self.number(start);
        }
        if c == b'"' {
            return self.string(start);
        }
        if c == b'\'' {
            return self.char_lit(start);
        }

        self.bump();
        let two = |lx: &mut Lexer<'a>, next: u8, yes: TokenKind, no: TokenKind| {
            if lx.peek() == Some(next) {
                lx.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b'%' => TokenKind::Percent,
            b'*' => two(self, b'=', TokenKind::StarAssign, TokenKind::Star),
            b'/' => two(self, b'=', TokenKind::SlashAssign, TokenKind::Slash),
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Not),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => two(self, b'&', TokenKind::AndAnd, TokenKind::Amp),
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(Diagnostic::error(
                        self.span_from(start),
                        "bitwise `|` is not supported in this C subset",
                    ));
                }
            }
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    TokenKind::PlusPlus
                } else {
                    two(self, b'=', TokenKind::PlusAssign, TokenKind::Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else if self.peek() == Some(b'-') {
                    self.bump();
                    TokenKind::MinusMinus
                } else {
                    two(self, b'=', TokenKind::MinusAssign, TokenKind::Minus)
                }
            }
            other => {
                return Err(Diagnostic::error(
                    self.span_from(start),
                    format!("unexpected character `{}`", other as char),
                ));
            }
        };
        Ok(Token {
            kind,
            span: self.span_from(start),
        })
    }

    fn ident_or_keyword(&mut self, start: (usize, u32, u32)) -> Token {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start.0..self.pos]).unwrap();
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        Token {
            kind,
            span: self.span_from(start),
        }
    }

    fn number(&mut self, start: (usize, u32, u32)) -> Result<Token, Diagnostic> {
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                self.bump();
            } else if (c == b'e' || c == b'E')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == b'+' || d == b'-')
            {
                is_float = true;
                self.bump(); // e
                self.bump(); // sign or digit
            } else {
                break;
            }
        }
        // Swallow C suffixes (L, U, f) without recording them.
        while let Some(c) = self.peek() {
            if matches!(c, b'l' | b'L' | b'u' | b'U' | b'f' | b'F') {
                if matches!(c, b'f' | b'F') {
                    is_float = true;
                }
                self.bump();
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.src[start.0..self.pos]).unwrap();
        let clean: String = raw
            .chars()
            .filter(|c| !matches!(c, 'l' | 'L' | 'u' | 'U' | 'f' | 'F'))
            .collect();
        let span = self.span_from(start);
        let kind = if is_float {
            let v = clean
                .parse::<f64>()
                .map_err(|_| Diagnostic::error(span, format!("bad float literal `{raw}`")))?;
            TokenKind::FloatLit(v)
        } else {
            let v = clean
                .parse::<i64>()
                .map_err(|_| Diagnostic::error(span, format!("bad integer literal `{raw}`")))?;
            TokenKind::IntLit(v)
        };
        Ok(Token { kind, span })
    }

    fn string(&mut self, start: (usize, u32, u32)) -> Result<Token, Diagnostic> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(Diagnostic::error(
                        self.span_from(start),
                        "unterminated string literal",
                    ));
                }
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| {
                        Diagnostic::error(self.span_from(start), "unterminated escape")
                    })?;
                    text.push(unescape(esc));
                }
                Some(c) => text.push(c as char),
            }
        }
        Ok(Token {
            kind: TokenKind::StrLit(text),
            span: self.span_from(start),
        })
    }

    fn char_lit(&mut self, start: (usize, u32, u32)) -> Result<Token, Diagnostic> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => {
                let esc = self.bump().ok_or_else(|| {
                    Diagnostic::error(self.span_from(start), "unterminated char literal")
                })?;
                unescape(esc) as i64
            }
            Some(c) => c as i64,
            None => {
                return Err(Diagnostic::error(
                    self.span_from(start),
                    "unterminated char literal",
                ));
            }
        };
        if self.bump() != Some(b'\'') {
            return Err(Diagnostic::error(
                self.span_from(start),
                "char literal must contain exactly one character",
            ));
        }
        Ok(Token {
            kind: TokenKind::CharLit(c),
            span: self.span_from(start),
        })
    }
}

fn unescape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_pointer_statement() {
        assert_eq!(
            kinds("p->nxt = q;"),
            vec![
                T::Ident("p".into()),
                T::Arrow,
                T::Ident("nxt".into()),
                T::Assign,
                T::Ident("q".into()),
                T::Semi,
                T::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_two_char_operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e && f || !g"),
            vec![
                T::Ident("a".into()),
                T::Eq,
                T::Ident("b".into()),
                T::Ne,
                T::Ident("c".into()),
                T::Le,
                T::Ident("d".into()),
                T::Ge,
                T::Ident("e".into()),
                T::AndAnd,
                T::Ident("f".into()),
                T::OrOr,
                T::Not,
                T::Ident("g".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn minus_forms() {
        assert_eq!(
            kinds("a - b -= c-- ->"),
            vec![
                T::Ident("a".into()),
                T::Minus,
                T::Ident("b".into()),
                T::MinusAssign,
                T::Ident("c".into()),
                T::MinusMinus,
                T::Arrow,
                T::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            kinds("42 3.5 1e3 7L 2.0f"),
            vec![
                T::IntLit(42),
                T::FloatLit(3.5),
                T::FloatLit(1000.0),
                T::IntLit(7),
                T::FloatLit(2.0),
                T::Eof
            ]
        );
    }

    #[test]
    fn dot_vs_member_access_on_float() {
        // `x.f` is member access, `1.5` is a float: the dot rule requires a
        // digit after the dot to start a float.
        assert_eq!(
            kinds("x.f"),
            vec![T::Ident("x".into()), T::Dot, T::Ident("f".into()), T::Eof]
        );
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        let src = "#include <stdio.h>\n// line comment\nint /* block */ x;";
        assert_eq!(
            kinds(src),
            vec![T::KwInt, T::Ident("x".into()), T::Semi, T::Eof]
        );
    }

    #[test]
    fn multiline_define_is_skipped() {
        let src = "#define FOO \\\n  bar\nint x;";
        assert_eq!(
            kinds(src),
            vec![T::KwInt, T::Ident("x".into()), T::Semi, T::Eof]
        );
    }

    #[test]
    fn string_and_char_literals() {
        assert_eq!(
            kinds(r#""he\nllo" 'a' '\n'"#),
            vec![
                T::StrLit("he\nllo".into()),
                T::CharLit(97),
                T::CharLit(10),
                T::Eof
            ]
        );
    }

    #[test]
    fn null_keyword() {
        assert_eq!(kinds("NULL"), vec![T::KwNull, T::Eof]);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn bitwise_or_rejected() {
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("int\n  x;").unwrap();
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }
}
