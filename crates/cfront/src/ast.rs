//! Abstract syntax tree for the C subset.

use crate::diag::Span;
use std::fmt;

/// A syntactic type expression (before typedef resolution).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeExpr {
    /// `void`
    Void,
    /// Any integer flavour (`int`, `long`, `short`, `char`, signed/unsigned).
    Int,
    /// `double` or `float`.
    Double,
    /// `struct name`
    Struct(String),
    /// A typedef name, resolved by the type table.
    Named(String),
    /// `T *`
    Pointer(Box<TypeExpr>),
    /// `T name[N]` — fixed-size array, allowed only as a struct field,
    /// where the type table expands it into `N` element fields
    /// (`name[0]` … `name[N-1]`).
    Array(Box<TypeExpr>, u32),
}

impl TypeExpr {
    /// Wrap this type in `depth` levels of pointer.
    pub fn pointer_to(self, depth: usize) -> TypeExpr {
        let mut t = self;
        for _ in 0..depth {
            t = TypeExpr::Pointer(Box::new(t));
        }
        t
    }

    /// True if this is syntactically a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, TypeExpr::Pointer(_))
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Void => write!(f, "void"),
            TypeExpr::Int => write!(f, "int"),
            TypeExpr::Double => write!(f, "double"),
            TypeExpr::Struct(n) => write!(f, "struct {n}"),
            TypeExpr::Named(n) => write!(f, "{n}"),
            TypeExpr::Pointer(t) => write!(f, "{t} *"),
            TypeExpr::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// One field of a struct declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A `struct` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Declared fields, in order.
    pub fields: Vec<Field>,
    /// Source location of the definition.
    pub span: Span,
}

/// A `typedef existing new;` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedefDef {
    /// The new name.
    pub name: String,
    /// The aliased type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for the comparison operators (result is a C boolean).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `*e` (pointer dereference)
    Deref,
    /// `&e` (address-of)
    AddrOf,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Span),
    /// Float literal.
    FloatLit(f64, Span),
    /// String literal (only usable as a call argument, e.g. `printf`).
    StrLit(String, Span),
    /// `NULL` (also produced for the literal `0` in pointer contexts during
    /// normalization, not in the parser).
    Null(Span),
    /// A variable reference.
    Ident(String, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Assignment `lhs = rhs` (or compound `lhs op= rhs`, desugared by the
    /// parser into `lhs = lhs op rhs`). Value-producing in C; the subset only
    /// allows it in statement and `for`-clause positions.
    Assign(Box<Expr>, Box<Expr>, Span),
    /// Member access `e.field` (`arrow == false`) or `e->field` (`true`).
    Member(Box<Expr>, String, bool, Span),
    /// Function call.
    Call(String, Vec<Expr>, Span),
    /// Cast `(T) e`.
    Cast(TypeExpr, Box<Expr>, Span),
    /// `sizeof(T)`.
    SizeOf(TypeExpr, Span),
    /// Conditional expression `c ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::FloatLit(_, s)
            | Expr::StrLit(_, s)
            | Expr::Null(s)
            | Expr::Ident(_, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Assign(_, _, s)
            | Expr::Member(_, _, _, s)
            | Expr::Call(_, _, s)
            | Expr::Cast(_, _, s)
            | Expr::SizeOf(_, s)
            | Expr::Cond(_, _, _, s) => *s,
        }
    }

    /// True if the expression is the integer literal zero (C's null pointer
    /// constant in pointer contexts).
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::IntLit(0, _))
    }
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration(s); one `Decl` per declarator.
    Decl(Decl),
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else?`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>, Span),
    /// `while (cond) body`
    While(Expr, Box<Stmt>, Span),
    /// `do body while (cond);`
    DoWhile(Box<Stmt>, Expr, Span),
    /// `for (init; cond; step) body` — any clause may be absent.
    For(
        Option<Box<Stmt>>,
        Option<Expr>,
        Option<Expr>,
        Box<Stmt>,
        Span,
    ),
    /// `return e?;`
    Return(Option<Expr>, Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `switch (e) { case k: …; break; … default: …; }` — the subset
    /// requires each non-final arm to end with `break` (no fallthrough);
    /// arms are `(Some(k), body)` or `(None, body)` for `default`.
    Switch(Expr, Vec<(Option<i64>, Vec<Stmt>)>, Span),
    /// `{ ... }`
    Block(Vec<Stmt>, Span),
    /// `;`
    Empty(Span),
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl(d) => d.span,
            Stmt::Expr(e) => e.span(),
            Stmt::Switch(_, _, s)
            | Stmt::If(_, _, _, s)
            | Stmt::While(_, _, s)
            | Stmt::DoWhile(_, _, s)
            | Stmt::For(_, _, _, _, s)
            | Stmt::Return(_, s)
            | Stmt::Break(s)
            | Stmt::Continue(s)
            | Stmt::Block(_, s)
            | Stmt::Empty(s) => *s,
        }
    }
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the header.
    pub span: Span,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct definitions, in declaration order.
    pub structs: Vec<StructDef>,
    /// Typedefs, in declaration order.
    pub typedefs: Vec<TypedefDef>,
    /// Global variable declarations.
    pub globals: Vec<Decl>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a struct definition by tag.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_to_wraps() {
        let t = TypeExpr::Struct("node".into()).pointer_to(2);
        assert_eq!(
            t,
            TypeExpr::Pointer(Box::new(TypeExpr::Pointer(Box::new(TypeExpr::Struct(
                "node".into()
            )))))
        );
        assert!(t.is_pointer());
    }

    #[test]
    fn display_of_types() {
        assert_eq!(
            TypeExpr::Pointer(Box::new(TypeExpr::Struct("n".into()))).to_string(),
            "struct n *"
        );
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }

    #[test]
    fn zero_literal_detection() {
        assert!(Expr::IntLit(0, Span::SYNTH).is_zero());
        assert!(!Expr::IntLit(1, Span::SYNTH).is_zero());
        assert!(!Expr::FloatLit(0.0, Span::SYNTH).is_zero());
    }
}
