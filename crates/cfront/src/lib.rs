//! # psa-cfront — C-subset frontend for progressive shape analysis
//!
//! This crate implements the frontend substrate the paper's compiler needs:
//! a lexer, a recursive-descent parser, an AST, and a type table for a subset
//! of C that is rich enough to express every benchmark code evaluated in
//! *Progressive Shape Analysis for Real C Codes* (ICPP 2001): struct
//! declarations with pointer and scalar fields, typedefs, functions,
//! `malloc`/`free`, `->`/`.` access chains, `if`/`while`/`do`/`for` control
//! flow, and the usual scalar expression operators.
//!
//! The shape analysis itself only consumes pointer statements and control
//! flow; everything scalar is carried through so that real codes parse
//! unmodified, then lowered to no-ops by `psa-ir`.
//!
//! ## Entry points
//!
//! * [`lexer::lex`] — source text to token stream.
//! * [`parse`] — source text to an [`ast::Program`].
//! * [`types::TypeTable::build`] — resolve typedefs and struct layouts,
//!   producing the selector universe used by the analysis.

pub mod asserts;
pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod types;

pub use ast::Program;
pub use diag::{Diagnostic, Span};
pub use parser::parse;
pub use types::TypeTable;

/// Convenience: parse a program and build its type table in one step.
pub fn parse_and_type(src: &str) -> Result<(Program, TypeTable), Diagnostic> {
    let program = parse(src)?;
    let table = TypeTable::build(&program)?;
    Ok((program, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_type_smoke() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *p;
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = 0;
                return 0;
            }
        "#;
        let (program, table) = parse_and_type(src).expect("parses");
        assert_eq!(program.functions.len(), 1);
        assert!(table.struct_id("node").is_some());
    }
}
