//! Source spans and diagnostics shared by the lexer, parser and type checker.

use std::fmt;

/// A half-open byte range into the original source text, with the 1-based
/// line and column of its start for human-readable reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized constructs.
    pub const SYNTH: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// Create a span from raw pieces.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        if self == Span::SYNTH {
            return other;
        }
        if other == Span::SYNTH {
            return self;
        }
        let (line, col) = if self.start <= other.start {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }

    /// True for spans attached to compiler-synthesized constructs.
    pub fn is_synth(&self) -> bool {
        *self == Span::SYNTH
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synth() {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A hard error: the input cannot be processed further.
    Error,
    /// Something suspicious that does not stop processing.
    Warning,
}

/// A diagnostic message tied to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the problem is.
    pub severity: Severity,
    /// Where in the source the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{}: {}: {}", self.span, sev, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_outer_extent() {
        let a = Span::new(4, 9, 1, 5);
        let b = Span::new(12, 20, 2, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 4);
        assert_eq!(m.end, 20);
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 5);
    }

    #[test]
    fn merge_with_synth_is_identity() {
        let a = Span::new(4, 9, 1, 5);
        assert_eq!(a.merge(Span::SYNTH), a);
        assert_eq!(Span::SYNTH.merge(a), a);
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::error(Span::new(0, 1, 3, 7), "unexpected token");
        assert_eq!(d.to_string(), "3:7: error: unexpected token");
        assert_eq!(Span::SYNTH.to_string(), "<synthesized>");
    }

    #[test]
    fn merge_reversed_order_picks_earlier_line() {
        let a = Span::new(12, 20, 2, 3);
        let b = Span::new(4, 9, 1, 5);
        let m = a.merge(b);
        assert_eq!((m.line, m.col), (1, 5));
    }
}
