//! Token definitions for the C subset.

use crate::diag::Span;
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An identifier (or a name later resolved as a typedef).
    Ident(String),
    /// An integer literal.
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),
    /// A string literal (contents without quotes, escapes resolved).
    StrLit(String),
    /// A character literal, stored as its integer value.
    CharLit(i64),

    // Keywords.
    KwStruct,
    KwTypedef,
    KwInt,
    KwLong,
    KwShort,
    KwUnsigned,
    KwSigned,
    KwDouble,
    KwFloat,
    KwChar,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwNull,
    KwSwitch,
    KwCase,
    KwDefault,

    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Star,
    Amp,
    Plus,
    Minus,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short printable name used in parser error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit(v) => format!("integer `{v}`"),
            TokenKind::FloatLit(v) => format!("float `{v}`"),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::CharLit(_) => "char literal".to_string(),
            TokenKind::KwStruct => "`struct`".to_string(),
            TokenKind::KwTypedef => "`typedef`".to_string(),
            TokenKind::KwInt => "`int`".to_string(),
            TokenKind::KwLong => "`long`".to_string(),
            TokenKind::KwShort => "`short`".to_string(),
            TokenKind::KwUnsigned => "`unsigned`".to_string(),
            TokenKind::KwSigned => "`signed`".to_string(),
            TokenKind::KwDouble => "`double`".to_string(),
            TokenKind::KwFloat => "`float`".to_string(),
            TokenKind::KwChar => "`char`".to_string(),
            TokenKind::KwVoid => "`void`".to_string(),
            TokenKind::KwIf => "`if`".to_string(),
            TokenKind::KwElse => "`else`".to_string(),
            TokenKind::KwWhile => "`while`".to_string(),
            TokenKind::KwDo => "`do`".to_string(),
            TokenKind::KwFor => "`for`".to_string(),
            TokenKind::KwReturn => "`return`".to_string(),
            TokenKind::KwBreak => "`break`".to_string(),
            TokenKind::KwContinue => "`continue`".to_string(),
            TokenKind::KwSizeof => "`sizeof`".to_string(),
            TokenKind::KwNull => "`NULL`".to_string(),
            TokenKind::KwSwitch => "`switch`".to_string(),
            TokenKind::KwCase => "`case`".to_string(),
            TokenKind::KwDefault => "`default`".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Dot => "`.`".to_string(),
            TokenKind::Arrow => "`->`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Amp => "`&`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Percent => "`%`".to_string(),
            TokenKind::Assign => "`=`".to_string(),
            TokenKind::PlusAssign => "`+=`".to_string(),
            TokenKind::MinusAssign => "`-=`".to_string(),
            TokenKind::StarAssign => "`*=`".to_string(),
            TokenKind::SlashAssign => "`/=`".to_string(),
            TokenKind::Eq => "`==`".to_string(),
            TokenKind::Ne => "`!=`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::Le => "`<=`".to_string(),
            TokenKind::Ge => "`>=`".to_string(),
            TokenKind::AndAnd => "`&&`".to_string(),
            TokenKind::OrOr => "`||`".to_string(),
            TokenKind::Not => "`!`".to_string(),
            TokenKind::PlusPlus => "`++`".to_string(),
            TokenKind::MinusMinus => "`--`".to_string(),
            TokenKind::Question => "`?`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }

    /// Look up the keyword for an identifier spelling, if any.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "struct" => TokenKind::KwStruct,
            "typedef" => TokenKind::KwTypedef,
            "int" => TokenKind::KwInt,
            "long" => TokenKind::KwLong,
            "short" => TokenKind::KwShort,
            "unsigned" => TokenKind::KwUnsigned,
            "signed" => TokenKind::KwSigned,
            "double" => TokenKind::KwDouble,
            "float" => TokenKind::KwFloat,
            "char" => TokenKind::KwChar,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "do" => TokenKind::KwDo,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "sizeof" => TokenKind::KwSizeof,
            "NULL" => TokenKind::KwNull,
            "switch" => TokenKind::KwSwitch,
            "case" => TokenKind::KwCase,
            "default" => TokenKind::KwDefault,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it was found.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("NULL"), Some(TokenKind::KwNull));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(TokenKind::Ident("p".into()).describe(), "identifier `p`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
