//! Shape-assertion comments: `// @assert shape(x, list)` and friends.
//!
//! Assertions ride in ordinary C comments, so the token stream (which drops
//! trivia) never sees them; this module re-scans the raw source with a tiny
//! state machine that skips string/char literals and collects every comment
//! whose first token is `@assert`. The grammar:
//!
//! ```text
//! assert  := ['!'] pred [';' 'expect' expectation (',' expectation)*]
//! pred    := 'shape'   '(' ident ',' shapename ')'
//!          | 'shared'  '(' ident '->' ident ')'
//!          | 'reach'   '(' ident ',' ident ')'
//!          | 'alias'   '(' ident ',' ident ')'
//!          | 'acyclic' '(' ident ')'
//! shapename   := 'empty' | 'list' | 'tree' | 'dll' | 'dag' | 'cyclic'
//! expectation := [('L1'|'L2'|'L3') '='] verdict
//! verdict     := 'holds' | 'may-fail' | 'concrete-violation'
//! ```
//!
//! The optional `; expect …` suffix carries the *expected* verdict for the
//! corpus replay tests — per level when prefixed `L2=`, for every level
//! otherwise. Names are resolved against the lowered IR by
//! `psa-ir`'s assertion resolver, not here.

use crate::diag::{Diagnostic, Span};

/// The shape classes an assertion may name (mirrors the heuristic
/// `ShapeClass` of the analysis queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeName {
    /// NULL.
    Empty,
    /// Unshared chain.
    List,
    /// Unshared, multiple out-selectors.
    Tree,
    /// Back-link pairs, no per-selector sharing.
    Dll,
    /// Sharing present.
    Dag,
    /// A cycle through the root.
    Cyclic,
}

impl ShapeName {
    /// Parse a shape-class keyword.
    pub fn parse(s: &str) -> Option<ShapeName> {
        Some(match s {
            "empty" => ShapeName::Empty,
            "list" => ShapeName::List,
            "tree" => ShapeName::Tree,
            "dll" => ShapeName::Dll,
            "dag" => ShapeName::Dag,
            "cyclic" => ShapeName::Cyclic,
            _ => return None,
        })
    }

    /// The keyword form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShapeName::Empty => "empty",
            ShapeName::List => "list",
            ShapeName::Tree => "tree",
            ShapeName::Dll => "dll",
            ShapeName::Dag => "dag",
            ShapeName::Cyclic => "cyclic",
        }
    }
}

/// A predicate with unresolved (name-based) operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawPred {
    /// `shape(x, class)` — heuristic structural classification.
    Shape(String, ShapeName),
    /// `shared(x->sel)` — some location reachable from `x` is referenced
    /// twice through `sel`.
    Shared(String, String),
    /// `reach(x, y)` — the location of `y` is reachable from `x`.
    Reach(String, String),
    /// `alias(p, q)` — both point at the same location.
    Alias(String, String),
    /// `acyclic(x)` — no cycle in the region reachable from `x`.
    Acyclic(String),
}

impl RawPred {
    /// Canonical rendering (no negation).
    pub fn render(&self) -> String {
        match self {
            RawPred::Shape(x, k) => format!("shape({x}, {})", k.as_str()),
            RawPred::Shared(x, s) => format!("shared({x}->{s})"),
            RawPred::Reach(x, y) => format!("reach({x}, {y})"),
            RawPred::Alias(p, q) => format!("alias({p}, {q})"),
            RawPred::Acyclic(x) => format!("acyclic({x})"),
        }
    }
}

/// Expected verdicts, as written in a corpus `; expect …` suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedVerdict {
    /// Certified by the abstract semantics.
    Holds,
    /// Not certified (and not concretely refuted).
    MayFail,
    /// Refuted by at least one concrete execution.
    ConcreteViolation,
}

impl ExpectedVerdict {
    /// The keyword form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExpectedVerdict::Holds => "holds",
            ExpectedVerdict::MayFail => "may-fail",
            ExpectedVerdict::ConcreteViolation => "concrete-violation",
        }
    }
}

/// One expectation: a verdict, optionally restricted to one analysis level
/// (1–3); `level: None` applies to every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// Restrict to L1/L2/L3 when `Some(1..=3)`.
    pub level: Option<u8>,
    /// The expected verdict.
    pub verdict: ExpectedVerdict,
}

/// A parsed assertion comment, names not yet resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAssert {
    /// Leading `!`.
    pub negated: bool,
    /// The predicate.
    pub pred: RawPred,
    /// 1-based source line of the comment.
    pub line: u32,
    /// Source span of the comment.
    pub span: Span,
    /// Expected verdicts from a `; expect …` suffix (empty if absent).
    pub expect: Vec<Expectation>,
}

impl RawAssert {
    /// Canonical rendering, e.g. `!shared(x->nxt)`.
    pub fn render(&self) -> String {
        format!(
            "{}{}",
            if self.negated { "!" } else { "" },
            self.pred.render()
        )
    }
}

/// Extract every `@assert` comment from raw C source. Non-assertion
/// comments are ignored; a comment that starts with `@assert` but fails to
/// parse is a hard error (silently dropping a typoed assertion would be the
/// worst possible behavior for a checker).
pub fn extract_asserts(src: &str) -> Result<Vec<RawAssert>, Diagnostic> {
    let mut out = Vec::new();
    for c in scan_comments(src) {
        let body = c.text.trim_start_matches(['*', ' ', '\t']).trim();
        if let Some(rest) = body.strip_prefix("@assert") {
            if !rest.is_empty() && !rest.starts_with([' ', '\t', '(', '!']) {
                // e.g. `@assertion` — a different word, not ours.
                continue;
            }
            let span = Span {
                start: c.start,
                end: c.end,
                line: c.line,
                col: c.col,
            };
            out.push(parse_assert(rest.trim(), span)?);
        }
    }
    Ok(out)
}

// ------------------------------------------------------------- scanning

struct Comment {
    text: String,
    start: usize,
    end: usize,
    line: u32,
    col: u32,
}

/// Collect all comments with their positions, skipping string and character
/// literals (a `//` inside `"…"` is not a comment).
fn scan_comments(src: &str) -> Vec<Comment> {
    let bytes = src.as_bytes();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            b'"' | b'\'' => {
                let quote = b;
                i += 1;
                col += 1;
                while i < bytes.len() && bytes[i] != quote {
                    let step = if bytes[i] == b'\\' { 2 } else { 1 };
                    for _ in 0..step.min(bytes.len() - i) {
                        if bytes[i] == b'\n' {
                            line += 1;
                            col = 1;
                        } else {
                            col += 1;
                        }
                        i += 1;
                    }
                }
                i += 1;
                col += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let (sl, sc) = (line, col);
                i += 2;
                col += 2;
                let text_start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                    col += 1;
                }
                comments.push(Comment {
                    text: src[text_start..i].to_string(),
                    start,
                    end: i,
                    line: sl,
                    col: sc,
                });
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let (sl, sc) = (line, col);
                i += 2;
                col += 2;
                let text_start = i;
                let mut text_end = bytes.len();
                while i < bytes.len() {
                    if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        text_end = i;
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                comments.push(Comment {
                    text: src[text_start..text_end.min(src.len())].to_string(),
                    start,
                    end: i,
                    line: sl,
                    col: sc,
                });
            }
            _ => {
                i += 1;
                col += 1;
            }
        }
    }
    comments
}

// -------------------------------------------------------------- parsing

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Bang,
    LParen,
    RParen,
    Comma,
    Arrow,
    Semi,
    Eq,
    Dash,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Dash => write!(f, "`-`"),
        }
    }
}

fn tokenize(s: &str, span: Span) -> Result<Vec<Tok>, Diagnostic> {
    let bytes = s.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'!' => {
                toks.push(Tok::Bang);
                i += 1;
            }
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            b'=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                toks.push(Tok::Arrow);
                i += 2;
            }
            b'-' => {
                toks.push(Tok::Dash);
                i += 1;
            }
            _ if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Word(s[start..i].to_string()));
            }
            _ => {
                return Err(Diagnostic::error(
                    span,
                    format!("@assert: unexpected character `{}`", b as char),
                ))
            }
        }
    }
    Ok(toks)
}

struct P<'a> {
    toks: &'a [Tok],
    pos: usize,
    span: Span,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(self.span, format!("@assert: {}", msg.into()))
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: Tok) -> Result<(), Diagnostic> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of comment"))),
        }
    }

    fn word(&mut self, what: &str) -> Result<String, Diagnostic> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of comment"))),
        }
    }
}

fn parse_assert(text: &str, span: Span) -> Result<RawAssert, Diagnostic> {
    let toks = tokenize(text, span)?;
    let mut p = P {
        toks: &toks,
        pos: 0,
        span,
    };

    let negated = matches!(p.peek(), Some(Tok::Bang));
    if negated {
        p.next();
    }
    let head = p.word("a predicate (shape/shared/reach/alias/acyclic)")?;
    p.eat(Tok::LParen)?;
    let pred = match head.as_str() {
        "shape" => {
            let x = p.word("a pointer variable")?;
            p.eat(Tok::Comma)?;
            let k = p.word("a shape class")?;
            let shape = ShapeName::parse(&k).ok_or_else(|| {
                p.err(format!(
                    "unknown shape class `{k}` (expected empty/list/tree/dll/dag/cyclic)"
                ))
            })?;
            RawPred::Shape(x, shape)
        }
        "shared" => {
            let x = p.word("a pointer variable")?;
            p.eat(Tok::Arrow)?;
            let s = p.word("a selector")?;
            RawPred::Shared(x, s)
        }
        "reach" => {
            let x = p.word("a pointer variable")?;
            p.eat(Tok::Comma)?;
            let y = p.word("a pointer variable")?;
            RawPred::Reach(x, y)
        }
        "alias" => {
            let x = p.word("a pointer variable")?;
            p.eat(Tok::Comma)?;
            let y = p.word("a pointer variable")?;
            RawPred::Alias(x, y)
        }
        "acyclic" => RawPred::Acyclic(p.word("a pointer variable")?),
        other => {
            return Err(p.err(format!(
                "unknown predicate `{other}` (expected shape/shared/reach/alias/acyclic)"
            )))
        }
    };
    p.eat(Tok::RParen)?;

    let mut expect = Vec::new();
    if matches!(p.peek(), Some(Tok::Semi)) {
        p.next();
        let kw = p.word("`expect`")?;
        if kw != "expect" {
            return Err(p.err(format!("expected `expect`, found `{kw}`")));
        }
        loop {
            expect.push(parse_expectation(&mut p)?);
            if matches!(p.peek(), Some(Tok::Comma)) {
                p.next();
            } else {
                break;
            }
        }
    }
    if p.peek().is_some() {
        let t = p.peek().unwrap().clone();
        return Err(p.err(format!("trailing {t} after the assertion")));
    }
    Ok(RawAssert {
        negated,
        pred,
        line: span.line,
        span,
        expect,
    })
}

fn parse_expectation(p: &mut P<'_>) -> Result<Expectation, Diagnostic> {
    let w = p.word("a verdict or level")?;
    let (level, verdict_word) = match w.as_str() {
        "L1" | "L2" | "L3" => {
            let lv = w.as_bytes()[1] - b'0';
            p.eat(Tok::Eq)?;
            (Some(lv), p.word("a verdict")?)
        }
        _ => (None, w),
    };
    let verdict = match verdict_word.as_str() {
        "holds" => ExpectedVerdict::Holds,
        "may" => {
            p.eat(Tok::Dash)?;
            let f = p.word("`fail`")?;
            if f != "fail" {
                return Err(p.err(format!("expected `may-fail`, found `may-{f}`")));
            }
            ExpectedVerdict::MayFail
        }
        "concrete" => {
            p.eat(Tok::Dash)?;
            let v = p.word("`violation`")?;
            if v != "violation" {
                return Err(p.err(format!(
                    "expected `concrete-violation`, found `concrete-{v}`"
                )));
            }
            ExpectedVerdict::ConcreteViolation
        }
        other => {
            return Err(p.err(format!(
                "unknown verdict `{other}` (expected holds/may-fail/concrete-violation)"
            )))
        }
    };
    Ok(Expectation { level, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_all_five_forms() {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                struct node *x; struct node *y;
                x = NULL; // @assert shape(x, empty)
                y = NULL;
                /* @assert !shared(x->nxt) */
                // @assert reach(x, y)
                // @assert !alias(x, y)
                // @assert acyclic(x)
                return 0;
            }
        "#;
        let asserts = extract_asserts(src).unwrap();
        assert_eq!(asserts.len(), 5);
        assert_eq!(asserts[0].render(), "shape(x, empty)");
        assert_eq!(asserts[1].render(), "!shared(x->nxt)");
        assert_eq!(asserts[2].render(), "reach(x, y)");
        assert_eq!(asserts[3].render(), "!alias(x, y)");
        assert_eq!(asserts[4].render(), "acyclic(x)");
        assert!(asserts[1].negated && asserts[3].negated);
        assert_eq!(asserts[0].line, 5);
    }

    #[test]
    fn expectation_suffix() {
        let src = "// @assert acyclic(x) ; expect L1=may-fail, L3=holds\n\
                   // @assert alias(p, q) ; expect concrete-violation\n";
        let asserts = extract_asserts(src).unwrap();
        assert_eq!(
            asserts[0].expect,
            vec![
                Expectation {
                    level: Some(1),
                    verdict: ExpectedVerdict::MayFail
                },
                Expectation {
                    level: Some(3),
                    verdict: ExpectedVerdict::Holds
                },
            ]
        );
        assert_eq!(
            asserts[1].expect,
            vec![Expectation {
                level: None,
                verdict: ExpectedVerdict::ConcreteViolation
            }]
        );
    }

    #[test]
    fn comments_inside_strings_are_not_asserts() {
        let src = r#"int main() { printf("// @assert acyclic(x)"); return 0; }"#;
        assert!(extract_asserts(src).unwrap().is_empty());
    }

    #[test]
    fn non_assert_comments_ignored() {
        let src = "// just a note\n/* @asserting nothing */\nint main() { return 0; }\n";
        assert!(extract_asserts(src).unwrap().is_empty());
    }

    #[test]
    fn bad_syntax_is_an_error() {
        for bad in [
            "// @assert",
            "// @assert frobnicate(x)",
            "// @assert shape(x, zipper)",
            "// @assert shared(x.nxt)",
            "// @assert reach(x y)",
            "// @assert alias(x, y) extra",
            "// @assert acyclic(x) ; expect maybe",
            "// @assert acyclic(x) ; expect L4=holds",
        ] {
            assert!(extract_asserts(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn block_comment_line_numbers() {
        let src = "int x;\n\n/* @assert acyclic(p) */\n";
        let asserts = extract_asserts(src).unwrap();
        assert_eq!(asserts[0].line, 3);
    }
}
