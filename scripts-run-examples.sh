#!/bin/sh
# Run every example once; used to verify the shipped examples work.
set -e
for ex in quickstart fig1_dll sparse_suite table1 soundness_check leak_hunt barnes_hut; do
  echo "=== example: $ex ==="
  cargo run --release --example "$ex" >/tmp/example_$ex.out 2>&1 && echo OK || { echo FAILED; tail -5 /tmp/example_$ex.out; }
done
