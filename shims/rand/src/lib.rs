//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of the `rand 0.8` API it actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer ranges.
//! The generator is xoshiro256** seeded through splitmix64 — not the real
//! `StdRng` (ChaCha12), but every consumer in this workspace treats the
//! stream as an arbitrary deterministic sequence, never as a cryptographic
//! or cross-version-stable one.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range. Panics on an empty
    /// range, like the real `rand`. The sampled type is a free parameter
    /// (as in `rand 0.8`) so usage-site requirements — e.g. slice indexing
    /// needing `usize` — propagate into untyped range literals.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types `gen_range` accepts for sample type `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-2i64..3);
            assert!((-2..3).contains(&v));
            let u = r.gen_range(0u8..100);
            assert!(u < 100);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
