//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warmup,
//! then `sample_size` timed samples (each sized to roughly fill
//! `measurement_time / sample_size`), and prints min/mean/max per
//! iteration. No statistics, HTML reports, or baselines.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id.to_string(), f);
        self
    }
}

/// Two-part benchmark identifier (`group/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(&label);
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Bencher {
        Bencher {
            sample_size,
            measurement_time,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, collecting per-iteration durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: how long does one iteration take?
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(1));
        let per_sample = budget / self.sample_size as u32;
        // Iterations per sample, clamped so tiny routines still aggregate.
        let iters = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        let deadline = Instant::now() + budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("bench {label}: no samples (closure never called iter)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "bench {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.samples.len()
        );
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(2));
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| {
                seen = d.iter().sum();
            })
        });
        assert_eq!(seen, 6);
    }
}
