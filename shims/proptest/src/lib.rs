//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the proptest API its property tests use: the `proptest!`
//! macro over `arg in strategy` parameter lists, integer-range and tuple
//! strategies, `any::<bool>()`, `Strategy::prop_map`, [`Just`],
//! [`prop_oneof!`], [`collection::vec`], `ProptestConfig`, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a per-test deterministic PRNG (seeded from the test name), and
//! there is **no shrinking** — a failing case panics with the generated
//! values left to the assertion message. `*.proptest-regressions` files are
//! ignored.

use std::ops::Range;

/// Per-run configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic test RNG (xoshiro256**, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (the test function name).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic sampling function.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`] to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted union of type-erased strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(arms.iter().any(|&(w, _)| w > 0), "all-zero union weights");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rng.next_u64() % total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted choice between strategies: `prop_oneof![2 => a, 1 => b]`, or
/// unweighted `prop_oneof![a, b]`. All arms must generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` of `elem`-generated values with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (subset: `bool`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Property-test harness macro: expands each `fn name(arg in strategy, ..)`
/// into a plain `#[test]` that loops `config.cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -5i64..5) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_map(v in (0usize..4, any::<bool>()).prop_map(|(n, b)| if b { n } else { 0 })) {
            prop_assert!(v < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_and_collection(v in crate::collection::vec(prop_oneof![3 => (0u8..4).prop_map(|x| x), 1 => Just(9u8)], 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 4 || x == 9));
        }
    }

    #[test]
    fn union_respects_zero_weights() {
        let u = prop_oneof![0 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::deterministic("weights");
        for _ in 0..32 {
            assert_eq!(u.generate(&mut rng), 2);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("bar");
        assert_ne!(TestRng::deterministic("foo").next_u64(), c.next_u64());
    }
}
