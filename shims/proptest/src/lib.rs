//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the proptest API its property tests use: the `proptest!`
//! macro over `arg in strategy` parameter lists, integer-range and tuple
//! strategies, `any::<bool>()`, `Strategy::prop_map`, `ProptestConfig`,
//! and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a per-test deterministic PRNG (seeded from the test name), and
//! there is **no shrinking** — a failing case panics with the generated
//! values left to the assertion message. `*.proptest-regressions` files are
//! ignored.

use std::ops::Range;

/// Per-run configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic test RNG (xoshiro256**, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (the test function name).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic sampling function.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (subset: `bool`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Property-test harness macro: expands each `fn name(arg in strategy, ..)`
/// into a plain `#[test]` that loops `config.cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -5i64..5) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_map(v in (0usize..4, any::<bool>()).prop_map(|(n, b)| if b { n } else { 0 })) {
            prop_assert!(v < 4);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("bar");
        assert_ne!(TestRng::deterministic("foo").next_u64(), c.next_u64());
    }
}
