//! # psa — Progressive Shape Analysis for Real C Codes
//!
//! Umbrella crate re-exporting the full public API of the workspace: a
//! complete implementation of the RSRSG shape analysis of Corbera, Asenjo
//! and Zapata (ICPP 2001). See the repository README for the architecture
//! overview and DESIGN.md for the per-experiment index.
//!
//! ## Example
//!
//! Analyze a list-building C program and query the resulting shape:
//!
//! ```
//! use psa::core::{Analyzer, AnalysisOptions, queries};
//! use psa::rsg::Level;
//!
//! let src = r#"
//!     struct node { int v; struct node *nxt; };
//!     int main() {
//!         struct node *list;
//!         struct node *p;
//!         int i;
//!         list = NULL;
//!         for (i = 0; i < 10; i++) {
//!             p = (struct node *) malloc(sizeof(struct node));
//!             p->nxt = list;
//!             list = p;
//!         }
//!         return 0;
//!     }
//! "#;
//!
//! let analyzer = Analyzer::new(src, AnalysisOptions::at_level(Level::L1)).unwrap();
//! let result = analyzer.run().unwrap();
//!
//! // The RSRSG at exit describes every final memory configuration.
//! assert!(!result.exit.is_empty());
//!
//! // `list` is an unshared singly-linked list.
//! let list = analyzer.ir().pvar_id("list").unwrap();
//! let report = queries::structure_report(&result.exit, list);
//! assert!(!report.any_shared);
//! ```
//!
//! Progressive analysis with a client goal (escalates L1 → L2 → L3 only
//! while the goal is unmet):
//!
//! ```
//! use psa::core::{Analyzer, AnalysisOptions, Goal};
//!
//! # let src = r#"
//! #     struct node { int v; struct node *nxt; };
//! #     int main() {
//! #         struct node *list; struct node *p; int i;
//! #         list = NULL;
//! #         for (i = 0; i < 4; i++) {
//! #             p = (struct node *) malloc(sizeof(struct node));
//! #             p->nxt = list; list = p;
//! #         }
//! #         return 0;
//! #     }
//! # "#;
//! let analyzer = Analyzer::new(src, AnalysisOptions::progressive()).unwrap();
//! let list = analyzer.ir().pvar_id("list").unwrap();
//! let outcome = analyzer.run_progressive(vec![Goal::NotSharedInRegion { pvar: list }]);
//! assert_eq!(outcome.satisfied_at, Some(psa::rsg::Level::L1));
//! ```

pub use psa_cfront as cfront;
pub use psa_codes as codes;
pub use psa_concrete as concrete;
pub use psa_core as core;
pub use psa_ir as ir;
pub use psa_rsg as rsg;
