//! Integration test for experiment F1: the complete Fig. 1 pipeline —
//! abstract interpretation of `x->nxt = NULL` over the summarized
//! doubly-linked list, checked step by step against the paper's figures.

use psa::core::semantics::{transfer_one, TransferCtx};
use psa::core::stats::AnalysisStats;
use psa::ir::{PtrStmt, PvarId};
use psa::rsg::divide::divide;
use psa::rsg::{builder, Level, ShapeCtx};
use psa_cfront::types::SelectorId;

const NXT: SelectorId = SelectorId(0);
const PRV: SelectorId = SelectorId(1);
const X: PvarId = PvarId(0);

#[test]
fn fig1b_division_produces_two_graphs() {
    let (g, [n1, ..]) = builder::fig1_dll(X, 1, NXT, PRV);
    let parts = divide(&g, X, NXT);
    assert_eq!(parts.len(), 2);
    for p in &parts {
        assert_eq!(
            p.succs(n1, NXT).len(),
            1,
            "single x->nxt target per divided graph"
        );
    }
}

#[test]
fn fig1c_pruning_matches_paper() {
    let (g, [n1, n2, n3]) = builder::fig1_dll(X, 1, NXT, PRV);
    let parts = divide(&g, X, NXT);

    // rsg''1: the 3-node variant (x -> n1 -> summary n2 -> n3).
    let three = parts
        .iter()
        .find(|p| p.num_nodes() == 3)
        .expect("3-node variant");
    // "we can safely remove the link <n3, prv, n1>".
    assert!(!three.has_link(n3, PRV, n1));
    // The rest of the DLL skeleton survives.
    assert!(three.has_link(n1, NXT, n2));
    assert!(three.has_link(n2, PRV, n1));
    assert!(three.has_link(n2, NXT, n3));
    assert!(three.has_link(n3, PRV, n2));

    // rsg''2: the 2-element variant. "<n2,nxt,n3> should be removed […]
    // this implies the elimination of <n3,prv,n2> […] node n2 cannot be
    // reached and is therefore removed."
    let two = parts
        .iter()
        .find(|p| p.num_nodes() == 2)
        .expect("2-node variant");
    assert!(!two.is_live(n2));
    assert!(two.has_link(n1, NXT, n3));
    assert!(two.has_link(n3, PRV, n1));
}

#[test]
fn fig1e_final_graphs_unlink_x_nxt() {
    let ctx = ShapeCtx::synthetic(1, 2);
    let (g, _) = builder::fig1_dll(X, 1, NXT, PRV);
    let tcx = TransferCtx::new(&ctx, Level::L1, &[]);
    let mut stats = AnalysisStats::default();
    let out = transfer_one(&g, &PtrStmt::StoreNil(X, NXT), &tcx, &mut stats);
    assert_eq!(out.len(), 2, "one final graph per divided variant");
    for p in &out {
        let head = p.pl(X).expect("x survives");
        assert!(p.succs(head, NXT).is_empty(), "x->nxt removed");
        assert!(!p.node(head).selout.contains(NXT));
        assert!(!p.node(head).may_selout().contains(NXT));
        p.check_invariants(&ctx).unwrap();
    }
}

#[test]
fn fig1_store_y_relinks() {
    // The sibling statement x->nxt = y: after unlinking, the new link is
    // definite and carries fresh properties.
    let ctx = ShapeCtx::synthetic(2, 2);
    let (mut g, _) = builder::fig1_dll(X, 2, NXT, PRV);
    // y points at a fresh isolated node.
    let fresh = g.add_fresh(psa_cfront::types::StructId(0));
    let y = PvarId(1);
    g.set_pl(y, fresh);
    let tcx = TransferCtx::new(&ctx, Level::L1, &[]);
    let mut stats = AnalysisStats::default();
    let out = transfer_one(&g, &PtrStmt::Store(X, NXT, y), &tcx, &mut stats);
    assert!(!out.is_empty());
    for p in &out {
        let head = p.pl(X).unwrap();
        let target = p.pl(y).unwrap();
        assert_eq!(p.succs(head, NXT), vec![target]);
        assert!(p.node(head).selout.contains(NXT));
        assert!(p.node(target).selin.contains(NXT));
        assert!(!p.node(target).shared, "first reference to the fresh node");
        p.check_invariants(&ctx).unwrap();
    }
}

#[test]
fn fig1_equivalent_from_source() {
    // The same scenario driven from C source through the whole pipeline:
    // build a DLL, then head->nxt = NULL.
    let src = r#"
        struct node { int v; struct node *nxt; struct node *prv; };
        int main() {
            struct node *list;
            struct node *p;
            int i;
            list = NULL;
            for (i = 0; i < 8; i++) {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                p->prv = NULL;
                if (list != NULL) { list->prv = p; }
                list = p;
            }
            if (list != NULL) {
                list->nxt = NULL;
            }
            return 0;
        }
    "#;
    let analyzer = psa::core::Analyzer::new(src, psa::core::AnalysisOptions::default()).unwrap();
    let res = analyzer.run().unwrap();
    let ir = analyzer.ir();
    let list = ir.pvar_id("list").unwrap();
    let nxt = ir.types.selector_id("nxt").unwrap();
    // At exit, in every graph where list is bound, list->nxt is gone.
    let mut found_bound = false;
    for g in res.exit.iter() {
        if let Some(h) = g.pl(list) {
            found_bound = true;
            assert!(g.succs(h, nxt).is_empty(), "list->nxt must be NULL at exit");
        }
    }
    assert!(found_bound);
}
