//! Differential regression suite for the worklist PRUNE (ISSUE 3
//! satellite): the seeded-worklist implementation must be *observationally
//! identical* to the whole-graph rescan reference. Each program is analyzed
//! twice — `reference_prune` off and on — and the exit RSRSG, every
//! per-statement RSRSG and the reported warnings must match bit for bit.

use psa::codes::generators::{dll_program, random_program};
use psa::core::engine::{Engine, EngineConfig};
use psa::ir::lower_main;
use psa::rsg::Level;

fn run_pair(src: &str, level: Level) {
    let (p, t) = psa::cfront::parse_and_type(src).expect("program parses");
    let ir = lower_main(&p, &t).expect("program lowers");
    let worklist = Engine::new(
        &ir,
        EngineConfig {
            level,
            reference_prune: false,
            ..Default::default()
        },
    )
    .run();
    let reference = Engine::new(
        &ir,
        EngineConfig {
            level,
            reference_prune: true,
            ..Default::default()
        },
    )
    .run();
    match (worklist, reference) {
        (Ok(w), Ok(r)) => {
            assert!(
                w.exit.same_as(&r.exit),
                "exit RSRSG diverged at {level}\nprogram:\n{src}"
            );
            for (i, (a, b)) in w.after_stmt.iter().zip(&r.after_stmt).enumerate() {
                assert_eq!(
                    a.signature(),
                    b.signature(),
                    "statement {i} RSRSG diverged at {level}\nprogram:\n{src}"
                );
            }
            for (a, b) in w.block_in.iter().zip(&r.block_in) {
                assert!(a.same_as(b), "block input diverged at {level}");
            }
            assert_eq!(
                w.stats.warnings, r.stats.warnings,
                "warnings diverged at {level}\nprogram:\n{src}"
            );
            assert_eq!(
                w.stats.ops.prune_calls, r.stats.ops.prune_calls,
                "same fixed point must prune the same number of times"
            );
        }
        (Err(we), Err(re)) => assert_eq!(we, re, "both runs must fail identically"),
        (w, r) => panic!(
            "worklist and reference runs disagree on success: {:?} vs {:?}\nprogram:\n{src}",
            w.map(|_| ()),
            r.map(|_| ())
        ),
    }
}

/// The paper codes at CI smoke sizes, all three levels.
#[test]
fn paper_codes_identical_under_both_prunes() {
    let sizes = psa::codes::Sizes::tiny();
    let codes = [
        ("barnes-hut", psa::codes::barnes_hut(sizes)),
        ("sparse-lu", psa::codes::sparse_lu(sizes)),
        ("dll", dll_program(6)),
    ];
    for (name, src) in &codes {
        for level in Level::ALL {
            eprintln!("differential prune: {name} at {level}");
            run_pair(src, level);
        }
    }
}

#[test]
fn random_programs_identical_under_both_prunes_l1() {
    for seed in 0u64..10 {
        run_pair(&random_program(seed, 20, 4), Level::L1);
    }
}

#[test]
fn random_programs_identical_under_both_prunes_l3() {
    for seed in 100u64..105 {
        run_pair(&random_program(seed, 16, 3), Level::L3);
    }
}
