//! Property tests for the tracked-scalar lattice pieces: join intersection,
//! subsumption direction, and canonical-form sensitivity.

use proptest::prelude::*;
use psa::ir::PvarId;
use psa::rsg::canon::isomorphic;
use psa::rsg::join::{compatible, join};
use psa::rsg::subsume::subsumes;
use psa::rsg::{builder, Level, Rsg, ShapeCtx};
use psa_cfront::types::SelectorId;

fn base_graph() -> Rsg {
    builder::singly_linked_list(3, 1, PvarId(0), SelectorId(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scalar_facts_affect_canonical_form(v in 0u32..4, k in -3i64..4) {
        let plain = base_graph();
        let mut flagged = base_graph();
        flagged.set_scalar(v, k);
        prop_assert!(!isomorphic(&plain, &flagged));
        // And the fact round-trips.
        prop_assert_eq!(flagged.scalar(v), Some(k));
    }

    #[test]
    fn fewer_facts_subsume_more(v in 0u32..4, k in -3i64..4) {
        let general = base_graph();
        let mut specific = base_graph();
        specific.set_scalar(v, k);
        prop_assert!(subsumes(&general, &specific), "unknown covers known");
        prop_assert!(!subsumes(&specific, &general), "known cannot cover unknown");
    }

    #[test]
    fn different_facts_never_subsume(v in 0u32..4, k in -3i64..4) {
        let mut a = base_graph();
        a.set_scalar(v, k);
        let mut b = base_graph();
        b.set_scalar(v, k + 1);
        prop_assert!(!subsumes(&a, &b));
        prop_assert!(!subsumes(&b, &a));
    }

    #[test]
    fn join_requires_equal_facts(v in 0u32..4, k in -3i64..4) {
        let mut a = base_graph();
        a.set_scalar(v, k);
        let mut b = base_graph();
        b.set_scalar(v, k);
        prop_assert!(compatible(&a, &b, Level::L1));
        let j = join(&a, &b, Level::L1);
        prop_assert_eq!(j.scalar(v), Some(k), "agreed facts survive the join");

        let mut c = base_graph();
        c.set_scalar(v, k + 1);
        prop_assert!(!compatible(&a, &c, Level::L1), "conflicting facts block join");
    }

    #[test]
    fn intersect_scalars_is_the_lattice_join(
        v1 in 0u32..3, k1 in -2i64..3, v2 in 0u32..3, k2 in -2i64..3
    ) {
        let mut a = Rsg::empty(1);
        a.set_scalar(v1, k1);
        a.set_scalar(v2, k2);
        let mut b = Rsg::empty(1);
        b.set_scalar(v1, k1);
        let mut j = a.clone();
        j.intersect_scalars(&b);
        // Only facts present and equal in both survive. (When v1 == v2 the
        // second set_scalar overwrote the first, so consult `a`'s actual
        // final value.)
        let a_final_v1 = a.scalar(v1).unwrap();
        if a_final_v1 == k1 {
            prop_assert_eq!(j.scalar(v1), Some(k1));
        } else {
            prop_assert_eq!(j.scalar(v1), None);
        }
        if v2 != v1 {
            prop_assert_eq!(j.scalar(v2), None, "b lacks v2");
        }
    }

    #[test]
    fn clear_scalar_forgets(v in 0u32..4, k in -3i64..4) {
        let mut g = Rsg::empty(2);
        g.set_scalar(v, k);
        g.clear_scalar(v);
        prop_assert_eq!(g.scalar(v), None);
        let ctx = ShapeCtx::synthetic(2, 1);
        let _ = &ctx;
        prop_assert!(isomorphic(&g, &Rsg::empty(2)));
    }
}
