/* A three-node tree built explicitly: no sharing through child links,
 * no cycles. */
struct tnode { int v; struct tnode *l; struct tnode *r; };
int main() {
    struct tnode *root; struct tnode *a; struct tnode *b;
    root = (struct tnode *) malloc(sizeof(struct tnode));
    a = (struct tnode *) malloc(sizeof(struct tnode));
    b = (struct tnode *) malloc(sizeof(struct tnode));
    root->l = a;
    root->r = b;
    // @assert acyclic(root); expect holds
    // @assert !shared(root->l); expect holds
    // @assert reach(root, a); expect holds
    // @assert !reach(a, b); expect holds
    return 0;
}
