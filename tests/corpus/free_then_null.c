/* Conditional free followed by NULLing: the freed region disappears
 * from x's reachable set. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *x; struct node *y;
    x = (struct node *) malloc(sizeof(struct node));
    y = (struct node *) malloc(sizeof(struct node));
    x->nxt = y;
    if (x != NULL) { free(x); x = NULL; }
    // @assert shape(x, empty); expect holds
    // @assert !reach(x, y); expect holds
    // @assert acyclic(x); expect holds
    return 0;
}
