/* Two cells referencing one target through the same selector: the
 * negated sharing assertion is concretely refuted (and the abstraction
 * rightly never certified it). The positive form can never be certified
 * abstractly — SHSEL is may-information — so it stays may-fail. */
struct node { int v; struct node *a; struct node *b; };
int main() {
    struct node *r; struct node *s; struct node *c;
    r = (struct node *) malloc(sizeof(struct node));
    s = (struct node *) malloc(sizeof(struct node));
    c = (struct node *) malloc(sizeof(struct node));
    r->a = c;
    s->a = c;
    r->b = s;
    // @assert !shared(r->a); expect concrete-violation
    // @assert shared(r->a); expect may-fail
    return 0;
}
