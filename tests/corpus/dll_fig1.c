/* Fig. 1's doubly-linked list: interior nodes carry two in-references
 * (pred nxt + succ prv) but never two through the same selector. */
struct node { int v; struct node *nxt; struct node *prv; };
int main() {
    struct node *list; struct node *p; struct node *x; int i;
    list = (struct node *) malloc(sizeof(struct node));
    list->nxt = NULL;
    list->prv = NULL;
    for (i = 0; i < 7; i++) {
        p = (struct node *) malloc(sizeof(struct node));
        p->nxt = list;
        p->prv = NULL;
        list->prv = p;
        list = p;
    }
    x = list;
    // @assert alias(x, list); expect holds
    // @assert !shared(x->nxt); expect holds
    // @assert !shared(x->prv); expect holds
    return 0;
}
