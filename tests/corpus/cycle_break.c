/* Create a cycle, then break it: the analysis must track the kill. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *h; struct node *p;
    h = (struct node *) malloc(sizeof(struct node));
    p = (struct node *) malloc(sizeof(struct node));
    h->nxt = p;
    p->nxt = h;
    // @assert !acyclic(h); expect holds
    p->nxt = NULL;
    // @assert acyclic(h); expect holds
    // @assert reach(h, p); expect holds
    return 0;
}
