/* A three-way pointer swap: exact alias tracking through the temp. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *x; struct node *y; struct node *t;
    x = (struct node *) malloc(sizeof(struct node));
    y = (struct node *) malloc(sizeof(struct node));
    t = x;
    x = y;
    y = t;
    // @assert alias(y, t); expect holds
    // @assert !alias(x, y); expect holds
    return 0;
}
