/* A deliberately false assertion: two distinct mallocs never alias.
 * The corpus keeps one concrete-violation entry so the replay test
 * exercises that verdict too. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *h; struct node *t;
    h = (struct node *) malloc(sizeof(struct node));
    t = (struct node *) malloc(sizeof(struct node));
    // @assert alias(h, t); expect concrete-violation
    return 0;
}
