/* Pointer copies are exact at every level: pvar-pointed nodes are
 * singular, so alias is decided, not approximated. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *a; struct node *b; struct node *c;
    a = (struct node *) malloc(sizeof(struct node));
    b = a;
    c = (struct node *) malloc(sizeof(struct node));
    // @assert alias(a, b); expect holds
    // @assert !alias(a, c); expect holds
    // @assert !alias(b, c); expect holds
    return 0;
}
