/* A two-cell chain in straight-line code: must-edges certify positive
 * reachability, absence of may-paths certifies the negation. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *h; struct node *t;
    t = (struct node *) malloc(sizeof(struct node));
    h = (struct node *) malloc(sizeof(struct node));
    h->nxt = t;
    // @assert reach(h, t); expect holds
    // @assert !reach(t, h); expect holds
    // @assert acyclic(h); expect holds
    return 0;
}
