/* An assertion inside a loop body is checked on every iteration; the
 * abstraction cannot certify it mid-traversal (summary self-loop), but
 * no execution refutes it. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *list; struct node *p; int i;
    list = NULL;
    for (i = 0; i < 5; i++) {
        p = (struct node *) malloc(sizeof(struct node));
        // @assert acyclic(list); expect may-fail
        p->nxt = list;
        list = p;
    }
    return 0;
}
