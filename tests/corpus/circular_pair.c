/* A two-node cycle: must-edge cycles certify !acyclic, and the
 * heuristic classifier reports Cyclic. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *h; struct node *p;
    h = (struct node *) malloc(sizeof(struct node));
    p = (struct node *) malloc(sizeof(struct node));
    h->nxt = p;
    p->nxt = h;
    // @assert !acyclic(h); expect holds
    // @assert shape(h, cyclic); expect holds
    // @assert reach(h, p); expect holds
    return 0;
}
