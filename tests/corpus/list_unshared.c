/* Singly-linked list built by front insertion: the paper's flagship
 * query — no node is referenced twice through `nxt`. */
struct node { int v; struct node *nxt; };
int main() {
    struct node *list; struct node *p; int i;
    list = NULL;
    for (i = 0; i < 6; i++) {
        p = (struct node *) malloc(sizeof(struct node));
        p->nxt = list;
        list = p;
    }
    // @assert !shared(list->nxt); expect holds
    // @assert acyclic(list); expect may-fail
    // @assert shape(list, list); expect holds
    return 0;
}
