//! Integration tests for the Olden-style extension workloads: shapes,
//! parallelizability and differential soundness. These exercise the whole
//! interprocedural pipeline end to end — the inliner on treeadd's
//! non-recursive helper, the summary path on its recursive core — and
//! provide the negative control for the sharing analysis (em3d's
//! genuinely shared bipartite graph).

use psa::codes::olden::{em3d, power, treeadd, RECURSIVE_OLDEN};
use psa::codes::Sizes;
use psa::concrete::check_soundness;
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::queries::{self, ShapeClass};
use psa::rsg::Level;

fn analyzer(src: &str) -> Analyzer {
    Analyzer::new(src, AnalysisOptions::default()).expect("lowers")
}

#[test]
fn treeadd_keeps_recursive_callees_and_stays_tree() {
    let a = analyzer(&treeadd(Sizes::default()));
    // The natural form keeps its two recursive functions as callees
    // (the non-recursive `mknode` helper inlines into `treealloc`).
    let names: Vec<&str> = a.ir().callees.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"treealloc"), "callees: {names:?}");
    assert!(names.contains(&"treeadd"), "callees: {names:?}");
    let treealloc = a
        .ir()
        .callees
        .iter()
        .find(|c| c.name == "treealloc")
        .unwrap();
    let inl_pvars: Vec<&str> = (0..treealloc.ir.num_pvars())
        .map(|i| treealloc.ir.pvar_name(psa::ir::PvarId(i as u32)))
        .filter(|n| n.contains("__inl"))
        .collect();
    assert!(!inl_pvars.is_empty(), "mknode inlined into treealloc");

    // The summary path must preserve the shape verdict the flat form
    // gets: a clean unshared binary tree at exit.
    let res = a.run_at(Level::L1).unwrap();
    assert!(res.stopped.is_none(), "no degradation: {:?}", res.stopped);
    let root = a.ir().pvar_id("root").unwrap();
    let ir = a.ir();
    let rep = queries::structure_report(&res.exit, root);
    assert!(!rep.any_shared, "tree unshared at exit: {rep}");
    assert_eq!(rep.class, ShapeClass::Tree);
    let l = ir.types.selector_id("l").unwrap();
    let r = ir.types.selector_id("r").unwrap();
    assert!(
        !rep.shared_selectors.contains(l),
        "left children unshared: {rep}"
    );
    assert!(
        !rep.shared_selectors.contains(r),
        "right children unshared: {rep}"
    );
}

#[test]
fn power_hierarchy_unshared() {
    let a = analyzer(&power(Sizes::default()));
    let res = a.run_at(Level::L1).unwrap();
    let root = a.ir().pvar_id("root").unwrap();
    let rep = queries::structure_report(&res.exit, root);
    assert!(!rep.any_shared, "power hierarchy is a tree of lists: {rep}");

    // The branch-update loop writes each branch exactly once.
    let reports = psa::core::parallel::loop_reports(a.ir(), &res);
    let br = a.ir().pvar_id("br").unwrap();
    let update_loops: Vec<_> = reports
        .iter()
        .filter(|r| r.ipvars.contains(&br) && !r.heap_writes.is_empty())
        .collect();
    assert!(!update_loops.is_empty());
    for l in update_loops {
        assert!(
            l.parallelizable,
            "branch updates are independent: {:?}",
            l.reasons
        );
    }
}

#[test]
fn em3d_detects_genuine_sharing() {
    let a = analyzer(&em3d(Sizes::default()));
    let res = a.run_at(Level::L1).unwrap();
    let elist = a.ir().pvar_id("elist").unwrap();
    // The H nodes reachable from the E list through deps are shared: the
    // analysis must NOT claim this structure unshared.
    let rep = queries::structure_report(&res.exit, elist);
    assert!(rep.any_shared, "em3d's H nodes are genuinely shared: {rep}");
    assert_eq!(rep.class, ShapeClass::Dag);
    // The `to` selector is the sharing channel.
    let to = a.ir().types.selector_id("to").unwrap();
    assert!(queries::shsel_in_region(&res.exit, elist, to));
}

#[test]
fn olden_codes_converge_at_all_levels() {
    for (name, src) in psa::codes::olden::olden_codes(Sizes::default()) {
        let a = analyzer(&src);
        for level in Level::ALL {
            let res = a
                .run_at(level)
                .unwrap_or_else(|e| panic!("{name}/{level}: {e}"));
            assert!(!res.exit.is_empty(), "{name}/{level}");
        }
    }
}

#[test]
fn olden_codes_memory_safe_and_validated() {
    // The full suite must come back with zero memory-safety *violations*
    // (may-fail sites are fine — they are the analysis being honest), and
    // every abstract `safe` claim must survive concrete execution.
    for (name, src) in psa::codes::olden::olden_codes(Sizes::tiny()) {
        let a = analyzer(&src);
        let res = a
            .run_at(Level::L1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let abs = psa::core::memsafe::memory_report(a.ir(), &res);
        assert!(abs.inconclusive.is_none(), "{name}: report inconclusive");
        assert_eq!(
            abs.num_violations(),
            0,
            "{name}: unexpected memory violations:\n{abs}"
        );
        let diff = psa::concrete::validate_memory_report(
            a.ir(),
            &abs,
            psa::concrete::InterpConfig::default(),
            &[1, 2, 3],
        );
        assert!(
            diff.is_validated(),
            "{name}: refuted safe claims: {:#?}",
            diff.mismatches
        );
        assert_eq!(diff.concrete_faults, 0, "{name}: concrete faults observed");
    }
}

#[test]
fn olden_codes_differentially_sound() {
    // The natural multi-function form goes through the full pipeline —
    // inlining for non-recursive calls, summaries for the recursive ones —
    // and every root-level abstract state must cover the frame-aware
    // interpreter's concrete state at the same point (for a call statement
    // that is the *glued* post-call state).
    for (name, src) in psa::codes::olden::olden_codes(Sizes::tiny()) {
        let rep = check_soundness(&src, Level::L1, &[1, 2]);
        assert!(
            rep.inconclusive.is_none(),
            "{name}: inconclusive: {:?}",
            rep.inconclusive
        );
        assert!(rep.is_sound(), "{name}: {:#?}", rep.violations);
    }
    // The recursion-free variants exercise the explicit-inliner path over
    // the same workloads; both pipelines must be sound on the same shapes.
    for (name, src) in psa::codes::olden::olden_codes_flat(Sizes::tiny()) {
        if !RECURSIVE_OLDEN.contains(&name) {
            continue; // identical source to the natural form, checked above
        }
        let (p, t) = psa_cfront::parse_and_type(&src).unwrap();
        let p2 = psa::ir::inline_program(&p, "main").unwrap();
        let ir = psa::ir::lower_main(&p2, &t).unwrap();
        let engine = psa::core::engine::Engine::new(
            &ir,
            psa::core::engine::EngineConfig::at_level(Level::L1),
        );
        let result = engine.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        for seed in [1u64, 2] {
            let exec = psa::concrete::Interpreter::new(
                &ir,
                psa::concrete::InterpConfig {
                    seed,
                    ..Default::default()
                },
            )
            .run();
            for point in &exec.trace {
                let rsrsg = result.at(point.stmt);
                assert!(
                    psa::concrete::cover::any_covers(rsrsg.iter(), &point.state, Level::L1),
                    "{name} (flat): uncovered after {} (seed {seed})",
                    point.stmt
                );
            }
        }
    }
}

#[test]
fn auto_inlined_reports_match_explicit_inlining_bit_for_bit() {
    // For non-recursive multi-function sources, the automatic inliner in
    // `lower_program` and the explicit `inline_program` + `lower_main`
    // pipeline must agree on everything the report says: same verdicts,
    // same shapes, same statement-level sections. Only wall-clock counters
    // (elapsed_ms, peak_bytes, *_ns) may differ between the two runs.
    fn stable(report: &str) -> String {
        report
            .lines()
            .filter(|l| {
                !(l.contains("_ns\":") || l.contains("elapsed_ms") || l.contains("peak_bytes"))
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
    for (name, src) in psa::codes::olden::olden_codes(Sizes::tiny()) {
        if RECURSIVE_OLDEN.contains(&name) {
            continue; // summaries, not inlining — no flattened twin exists
        }
        let (p, t) = psa_cfront::parse_and_type(&src).unwrap();
        for level in Level::ALL {
            let auto = {
                let ir = psa::ir::lower_program(&p, &t, "main")
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let engine = psa::core::engine::Engine::new(
                    &ir,
                    psa::core::engine::EngineConfig::at_level(level),
                );
                let result = engine
                    .run()
                    .unwrap_or_else(|e| panic!("{name}/{level}: {e}"));
                psa::core::report::build_report(&ir, &result)
                    .to_json()
                    .pretty()
            };
            let explicit = {
                let p2 = psa::ir::inline_program(&p, "main").unwrap();
                let ir = psa::ir::lower_main(&p2, &t).unwrap();
                let engine = psa::core::engine::Engine::new(
                    &ir,
                    psa::core::engine::EngineConfig::at_level(level),
                );
                let result = engine
                    .run()
                    .unwrap_or_else(|e| panic!("{name}/{level}: {e}"));
                psa::core::report::build_report(&ir, &result)
                    .to_json()
                    .pretty()
            };
            assert_eq!(
                stable(&auto),
                stable(&explicit),
                "{name}/{level}: the two inlining pipelines diverged"
            );
        }
    }
}
