//! Integration tests for the Olden-style extension workloads: shapes,
//! parallelizability and differential soundness. These exercise the
//! function inliner end to end (treeadd's helpers) and provide the
//! negative control for the sharing analysis (em3d's genuinely shared
//! bipartite graph).

use psa::codes::olden::{em3d, power, treeadd};
use psa::codes::Sizes;
use psa::concrete::check_soundness;
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::queries::{self, ShapeClass};
use psa::rsg::Level;

fn analyzer(src: &str) -> Analyzer {
    Analyzer::new(src, AnalysisOptions::default()).expect("lowers")
}

#[test]
fn treeadd_inlines_and_stays_tree() {
    let a = analyzer(&treeadd(Sizes::default()));
    // The inliner must have expanded mknode.
    assert!(a.ir().pvar_id("__inl0_p").is_some(), "mknode inlined");
    let res = a.run_at(Level::L1).unwrap();
    let root = a.ir().pvar_id("root").unwrap();
    let ir = a.ir();

    // At exit, residual sharing can only come through the traversal stack's
    // `node` selector (the walk referenced tree cells); the tree's own
    // child selectors are never shared.
    let rep = queries::structure_report(&res.exit, root);
    let l = ir.types.selector_id("l").unwrap();
    let r = ir.types.selector_id("r").unwrap();
    assert!(
        !rep.shared_selectors.contains(l),
        "left children unshared: {rep}"
    );
    assert!(
        !rep.shared_selectors.contains(r),
        "right children unshared: {rep}"
    );

    // Right after construction (before the stack walk touches it), the
    // structure is a clean unshared tree: inspect the RSRSG at the last
    // construction statement (the break targets rejoin before `sum = 0`).
    let walk_start = ir
        .stmts
        .iter()
        .position(|st| {
            matches!(&st.stmt, psa::ir::Stmt::Ptr(psa::ir::PtrStmt::Malloc(p, t))
            if ir.pvar_name(*p) == "top"
                && ir.types.struct_info(*t).name == "stk")
        })
        .expect("stack creation found");
    let before_walk = res.at(psa::ir::StmtId(walk_start as u32 - 1));
    let rep2 = queries::structure_report(before_walk, root);
    assert!(!rep2.any_shared, "tree unshared before the walk: {rep2}");
    assert_eq!(rep2.class, ShapeClass::Tree);
}

#[test]
fn power_hierarchy_unshared() {
    let a = analyzer(&power(Sizes::default()));
    let res = a.run_at(Level::L1).unwrap();
    let root = a.ir().pvar_id("root").unwrap();
    let rep = queries::structure_report(&res.exit, root);
    assert!(!rep.any_shared, "power hierarchy is a tree of lists: {rep}");

    // The branch-update loop writes each branch exactly once.
    let reports = psa::core::parallel::loop_reports(a.ir(), &res);
    let br = a.ir().pvar_id("br").unwrap();
    let update_loops: Vec<_> = reports
        .iter()
        .filter(|r| r.ipvars.contains(&br) && !r.heap_writes.is_empty())
        .collect();
    assert!(!update_loops.is_empty());
    for l in update_loops {
        assert!(
            l.parallelizable,
            "branch updates are independent: {:?}",
            l.reasons
        );
    }
}

#[test]
fn em3d_detects_genuine_sharing() {
    let a = analyzer(&em3d(Sizes::default()));
    let res = a.run_at(Level::L1).unwrap();
    let elist = a.ir().pvar_id("elist").unwrap();
    // The H nodes reachable from the E list through deps are shared: the
    // analysis must NOT claim this structure unshared.
    let rep = queries::structure_report(&res.exit, elist);
    assert!(rep.any_shared, "em3d's H nodes are genuinely shared: {rep}");
    assert_eq!(rep.class, ShapeClass::Dag);
    // The `to` selector is the sharing channel.
    let to = a.ir().types.selector_id("to").unwrap();
    assert!(queries::shsel_in_region(&res.exit, elist, to));
}

#[test]
fn olden_codes_converge_at_all_levels() {
    for (name, src) in psa::codes::olden::olden_codes(Sizes::default()) {
        let a = analyzer(&src);
        for level in Level::ALL {
            let res = a
                .run_at(level)
                .unwrap_or_else(|e| panic!("{name}/{level}: {e}"));
            assert!(!res.exit.is_empty(), "{name}/{level}");
        }
    }
}

#[test]
fn olden_codes_memory_safe_and_validated() {
    // The full suite must come back with zero memory-safety *violations*
    // (may-fail sites are fine — they are the analysis being honest), and
    // every abstract `safe` claim must survive concrete execution.
    for (name, src) in psa::codes::olden::olden_codes(Sizes::tiny()) {
        let a = analyzer(&src);
        let res = a
            .run_at(Level::L1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let abs = psa::core::memsafe::memory_report(a.ir(), &res);
        assert!(abs.inconclusive.is_none(), "{name}: report inconclusive");
        assert_eq!(
            abs.num_violations(),
            0,
            "{name}: unexpected memory violations:\n{abs}"
        );
        let diff = psa::concrete::validate_memory_report(
            a.ir(),
            &abs,
            psa::concrete::InterpConfig::default(),
            &[1, 2, 3],
        );
        assert!(
            diff.is_validated(),
            "{name}: refuted safe claims: {:#?}",
            diff.mismatches
        );
        assert_eq!(diff.concrete_faults, 0, "{name}: concrete faults observed");
    }
}

#[test]
fn olden_codes_differentially_sound() {
    for (name, src) in psa::codes::olden::olden_codes(Sizes::tiny()) {
        // The soundness oracle runs on the *inlined* program: inline first,
        // then hand the flat source… the harness lowers `main` directly, so
        // inline here via the API-equivalent path.
        let (p, t) = psa_cfront::parse_and_type(&src).unwrap();
        let p2 = psa::ir::inline_program(&p, "main").unwrap();
        // Reconstruct a source-independent check by running the engine and
        // interpreter over the same IR.
        let ir = psa::ir::lower_main(&p2, &t).unwrap();
        let engine = psa::core::engine::Engine::new(
            &ir,
            psa::core::engine::EngineConfig::at_level(Level::L1),
        );
        let result = engine.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        for seed in [1u64, 2] {
            let exec = psa::concrete::Interpreter::new(
                &ir,
                psa::concrete::InterpConfig {
                    seed,
                    ..Default::default()
                },
            )
            .run();
            for point in &exec.trace {
                let rsrsg = result.at(point.stmt);
                assert!(
                    psa::concrete::cover::any_covers(rsrsg.iter(), &point.state, Level::L1),
                    "{name}: uncovered after {} (seed {seed})",
                    point.stmt
                );
            }
        }
        // Also exercise the plain harness on the already-inlined codes
        // (power and em3d have no calls; the rest build through helpers).
        if name == "power" || name == "em3d" {
            let rep = check_soundness(&src, Level::L1, &[3]);
            assert!(rep.is_sound(), "{name}: {:#?}", rep.violations);
        }
    }
}
