//! Fixed-point behaviour of the engine on structurally hard programs:
//! convergence, boundedness, level monotonicity and determinism.

use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::queries;
use psa::rsg::Level;

fn analyzer(src: &str) -> Analyzer {
    Analyzer::new(src, AnalysisOptions::default()).expect("lowers")
}

#[test]
fn tree_with_stack_walk_converges_at_all_levels() {
    let src = psa::codes::generators::tree_program(9);
    let a = analyzer(&src);
    for level in Level::ALL {
        let res = a.run_at(level).unwrap_or_else(|e| panic!("{level}: {e}"));
        assert!(!res.exit.is_empty(), "{level}");
        // Stack fully drained at exit.
        let top = a.ir().pvar_id("top").unwrap();
        assert!(queries::always_null(&res.exit, top));
    }
}

#[test]
fn circular_list_traversal_converges() {
    // Traversing a circular list with a pointer-equality exit condition.
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *h; struct node *p; struct node *q; int i;
            h = (struct node *) malloc(sizeof(struct node));
            h->nxt = h;
            for (i = 0; i < 5; i++) {
                q = (struct node *) malloc(sizeof(struct node));
                q->nxt = h->nxt;
                h->nxt = q;
            }
            p = h->nxt;
            while (p != h) {
                p->v = 1;
                p = p->nxt;
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L1).unwrap();
    let h = a.ir().pvar_id("h").unwrap();
    let rep = queries::structure_report(&res.exit, h);
    assert!(
        rep.cycle_through_root,
        "circular list must be detected: {rep}"
    );
}

#[test]
fn nested_loops_with_inner_reset_converge() {
    let src = psa::codes::generators::list_of_lists_program(6, 4);
    let a = analyzer(&src);
    for level in Level::ALL {
        let res = a.run_at(level).unwrap_or_else(|e| panic!("{level}: {e}"));
        let rows = a.ir().pvar_id("rows").unwrap();
        assert!(
            !queries::shared_in_region(&res.exit, rows),
            "{level}: rows unshared"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let src = psa::codes::generators::dll_program(8);
    let a = analyzer(&src);
    let r1 = a.run_at(Level::L2).unwrap();
    let r2 = a.run_at(Level::L2).unwrap();
    assert!(r1.exit.same_as(&r2.exit));
    for (x, y) in r1.after_stmt.iter().zip(&r2.after_stmt) {
        assert!(x.same_as(y));
    }
}

#[test]
fn results_bounded_regardless_of_trip_counts() {
    for n in [2usize, 10, 1000] {
        let src = psa::codes::generators::list_program(n, 1);
        let a = analyzer(&src);
        let res = a.run_at(Level::L1).unwrap();
        assert!(
            res.stats.max_graphs_per_stmt <= 16,
            "n={n}: graphs bounded by widening"
        );
        assert!(res.stats.max_nodes_per_graph <= 12, "n={n}: nodes bounded");
    }
}

#[test]
fn higher_levels_never_lose_exit_reachability() {
    // Every level must produce a non-empty exit for every benchmark code.
    for (name, src) in psa::codes::table1_codes(psa::codes::Sizes::tiny()) {
        let a = analyzer(&src);
        for level in Level::ALL {
            let res = a
                .run_at(level)
                .unwrap_or_else(|e| panic!("{name}/{level}: {e}"));
            assert!(!res.exit.is_empty(), "{name}/{level}");
        }
    }
}

#[test]
fn destructive_list_reversal_stays_list() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *list; struct node *rev; struct node *p; struct node *t; int i;
            list = NULL;
            for (i = 0; i < 8; i++) {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                list = p;
            }
            rev = NULL;
            p = list;
            while (p != NULL) {
                t = p->nxt;
                p->nxt = rev;
                rev = p;
                p = t;
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L1).unwrap();
    let rev = a.ir().pvar_id("rev").unwrap();
    let rep = queries::structure_report(&res.exit, rev);
    assert!(!rep.any_shared, "reversed list stays unshared: {rep}");
    assert!(
        matches!(
            rep.class,
            queries::ShapeClass::List | queries::ShapeClass::Empty
        ),
        "reversal preserves listness: {rep}"
    );
    // Original head pointer now ends the list.
    let list = a.ir().pvar_id("list").unwrap();
    assert!(
        queries::may_alias(&res.exit, rev, list) || {
            // after full reversal rev is the old tail; list may still point at
            // the old head (now the last element)
            true
        }
    );
}

#[test]
fn null_program_paths_filtered_exactly() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *p; struct node *q; int c;
            p = NULL;
            q = NULL;
            if (c > 0) { p = (struct node *) malloc(sizeof(struct node)); }
            if (p != NULL) { q = p; }
            if (p == NULL) {
                /* here q must be NULL too */
                q = q;
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L1).unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    let q = a.ir().pvar_id("q").unwrap();
    for g in res.exit.iter() {
        if g.pl(p).is_none() {
            assert!(g.pl(q).is_none(), "q tracks p's nullness exactly");
        } else {
            assert_eq!(g.pl(p), g.pl(q), "q aliases p when bound");
        }
    }
}
