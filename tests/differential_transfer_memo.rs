//! Differential regression suite for the transfer memo and the delta
//! worklist (ISSUE satellite): the memoized, delta-driven incremental
//! fixpoint must be *observationally identical* to the recompute-everything
//! reference. Programs are analyzed with each feature combination and every
//! per-statement RSRSG must have bit-identical canonical signatures.
//!
//! Signatures are canonical bytes (content-compared `Arc<[u8]>`s), so the
//! comparison is independent of which interner minted them — and in
//! particular independent of which isomorphic representative the interner
//! retained for a canonical form.

use proptest::prelude::*;
use psa::codes::generators::{dll_program, random_program};
use psa::core::engine::{AnalysisResult, Engine, EngineConfig};
use psa::ir::{lower_main, FuncIr};
use psa::rsg::Level;

fn lower(src: &str) -> FuncIr {
    let (p, t) = psa::cfront::parse_and_type(src).expect("generated program parses");
    lower_main(&p, &t).expect("generated program lowers")
}

fn run(
    ir: &FuncIr,
    level: Level,
    transfer_cache: bool,
    delta_transfer: bool,
) -> Result<AnalysisResult, psa::core::engine::AnalysisError> {
    Engine::new(
        ir,
        EngineConfig {
            level,
            transfer_cache,
            delta_transfer,
            ..Default::default()
        },
    )
    .run()
}

/// Assert two runs are observationally identical: same success/failure,
/// same exit set, same per-statement and per-block signatures, same
/// warnings and revisits.
fn assert_identical(
    a: &Result<AnalysisResult, psa::core::engine::AnalysisError>,
    b: &Result<AnalysisResult, psa::core::engine::AnalysisError>,
    what: &str,
    src: &str,
    level: Level,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert!(
                x.exit.same_as(&y.exit),
                "{what}: exit RSRSG diverged at {level}\nprogram:\n{src}"
            );
            for (i, (s, r)) in x.after_stmt.iter().zip(&y.after_stmt).enumerate() {
                assert_eq!(
                    s.signature(),
                    r.signature(),
                    "{what}: statement {i} RSRSG diverged at {level}\nprogram:\n{src}"
                );
            }
            for (s, r) in x.block_in.iter().zip(&y.block_in) {
                assert!(s.same_as(r), "{what}: block input diverged at {level}");
            }
            assert_eq!(
                x.stats.warnings, y.stats.warnings,
                "{what}: warnings diverged at {level}\nprogram:\n{src}"
            );
            assert_eq!(
                x.stats.revisits, y.stats.revisits,
                "{what}: revisits diverged at {level}\nprogram:\n{src}"
            );
        }
        (Err(xe), Err(ye)) => assert_eq!(xe, ye, "{what}: both runs must fail identically"),
        (x, y) => panic!(
            "{what}: runs disagree on success at {level}: {:?} vs {:?}\nprogram:\n{src}",
            x.as_ref().map(|_| ()),
            y.as_ref().map(|_| ())
        ),
    }
}

/// Reference (both features off) vs memo-only, delta-only, and both.
fn run_quad(src: &str, level: Level) {
    let ir = lower(src);
    let reference = run(&ir, level, false, false);
    for (memo, delta, what) in [
        (true, false, "transfer memo"),
        (false, true, "delta worklist"),
        (true, true, "memo + delta"),
    ] {
        let incremental = run(&ir, level, memo, delta);
        assert_identical(&incremental, &reference, what, src, level);
    }
    // The reference run must not have touched the incremental paths.
    if let Ok(r) = &reference {
        assert_eq!(r.stats.ops.transfer_queries, 0);
        assert_eq!(r.stats.ops.delta_stmt_hits, 0);
        assert_eq!(r.stats.ops.delta_stmt_extends, 0);
        assert_eq!(r.stats.ops.delta_stmt_fulls, 0);
    }
}

#[test]
fn random_programs_identical_memo_and_delta_l1() {
    for seed in 0u64..12 {
        let src = random_program(seed, 20, 4);
        run_quad(&src, Level::L1);
    }
}

#[test]
fn random_programs_identical_memo_and_delta_l3() {
    for seed in 0u64..6 {
        let src = random_program(seed, 16, 3);
        run_quad(&src, Level::L3);
    }
}

#[test]
fn dll_identical_memo_and_delta_all_levels() {
    let src = dll_program(8);
    for level in Level::ALL {
        run_quad(&src, level);
    }
}

#[test]
fn paper_codes_identical_memo_and_delta_all_levels() {
    let sizes = psa::codes::Sizes::tiny();
    for src in [
        psa::codes::sparse_matvec(sizes),
        psa::codes::sparse_lu(sizes),
        psa::codes::barnes_hut(sizes),
    ] {
        for level in Level::ALL {
            run_quad(&src, level);
        }
    }
}

#[test]
fn memoized_run_actually_hits_the_memo() {
    // A loopy program re-transfers statements whose inputs recur, so the
    // transfer memo must answer them without re-running the pipeline, and
    // statements whose inputs did not change at all must be replayed by the
    // delta worklist.
    let src = dll_program(8);
    let ir = lower(&src);
    let res = run(&ir, Level::L1, true, true).unwrap();
    let ops = &res.stats.ops;
    assert!(ops.transfer_queries > 0, "{ops:?}");
    assert!(
        ops.transfer_memo_hits > 0,
        "fixed-point iteration must re-transfer known graphs: {ops:?}"
    );
    assert_eq!(
        ops.transfer_queries,
        ops.transfer_memo_hits + ops.transfer_memo_misses,
        "{ops:?}"
    );
    assert!(
        ops.transfer_memo_hit_rate() > 0.3,
        "a loopy program should answer a fair share of transfers from the \
         memo, got {:.2}",
        ops.transfer_memo_hit_rate()
    );
    assert!(
        ops.delta_stmt_hits > 0,
        "unchanged statement inputs must be replayed: {ops:?}"
    );
    assert!(ops.transfer_cache_size > 0, "{ops:?}");
}

#[test]
fn progressive_rerun_at_same_level_answers_from_the_memo() {
    // Two engines over one ShapeCtx at the same level and config: the
    // second run's transfers are all answered by the memo populated by the
    // first (the progressive L1→L3 re-run scenario, collapsed to one
    // level).
    let src = dll_program(8);
    let ir = lower(&src);
    let ctx = psa::rsg::ShapeCtx::from_ir(&ir);
    let cfg = EngineConfig::at_level(Level::L1);
    let first = Engine::with_shape_ctx(&ir, cfg.clone(), ctx.clone())
        .run()
        .unwrap();
    let second = Engine::with_shape_ctx(&ir, cfg, ctx).run().unwrap();
    assert!(first.exit.same_as(&second.exit));
    assert!(first.stats.ops.transfer_memo_misses > 0);
    assert_eq!(
        second.stats.ops.transfer_memo_misses, 0,
        "a same-config re-run must answer every transfer from the memo: {:?}",
        second.stats.ops
    );
    assert!(second.stats.ops.transfer_memo_hits > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delta re-transfer equals full re-transfer on arbitrary programs:
    /// the prefix-fold decomposition may never change the fixed point.
    #[test]
    fn delta_equals_full_on_random_programs(
        seed in 0u64..1u64 << 32,
        stmts in 8usize..18,
        pvars in 2usize..4,
        l3 in any::<bool>(),
    ) {
        let src = random_program(seed, stmts, pvars);
        let level = if l3 { Level::L3 } else { Level::L1 };
        let ir = lower(&src);
        let full = run(&ir, level, true, false);
        let delta = run(&ir, level, true, true);
        match (&delta, &full) {
            (Ok(d), Ok(f)) => {
                prop_assert!(d.exit.same_as(&f.exit), "exit diverged\n{src}");
                for (s, r) in d.after_stmt.iter().zip(&f.after_stmt) {
                    prop_assert_eq!(s.signature(), r.signature(), "stmt diverged\n{}", src);
                }
            }
            (Err(de), Err(fe)) => prop_assert_eq!(de, fe),
            _ => prop_assert!(false, "runs disagree on success\n{src}"),
        }
    }
}
