//! Tests of the tracked-scalar (flag) extension: `ScalarConst`/`ScalarHavoc`
//! statements and `ScalarEq` branch refinement keep flag-guarded loops
//! precise — the `done = 1; while (done == 0)` pattern that real C codes
//! (including the paper's Barnes-Hut before its stack transformation) use
//! everywhere.

use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::queries;
use psa::rsg::Level;

fn analyzer(src: &str) -> Analyzer {
    Analyzer::new(src, AnalysisOptions::default()).expect("lowers")
}

#[test]
fn flag_statements_lowered() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            int done;
            struct node *p;
            done = 0;
            while (done == 0) {
                p = (struct node *) malloc(sizeof(struct node));
                done = 1;
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let ir = a.ir();
    assert!(ir.scalar_id("done").is_some(), "done is tracked");
    assert!(ir
        .stmts
        .iter()
        .any(|s| matches!(s.stmt, psa::ir::Stmt::ScalarConst(_, 1))));
    assert!(ir.blocks.iter().any(|b| matches!(
        b.term,
        psa::ir::Terminator::Branch {
            cond: psa::ir::Cond::ScalarEq(_, 0),
            ..
        }
    )));
}

#[test]
fn flag_loop_exits_precisely() {
    // After the loop, done == 1 in every configuration, and the loop body
    // ran at least once — p is never NULL at exit.
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            int done;
            struct node *p;
            done = 0;
            while (done == 0) {
                p = (struct node *) malloc(sizeof(struct node));
                done = 1;
            }
            p->v = 1;
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L1).unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    assert!(
        !queries::may_be_null(&res.exit, p),
        "flag tracking proves the body executed"
    );
    // No NULL-dereference warning for p->v.
    assert!(
        !res.stats.warnings.iter().any(|w| w.contains("`p`")),
        "{:?}",
        res.stats.warnings
    );
}

#[test]
fn flag_version_of_insertion_loop_is_precise() {
    // The `done`-flag variant of the Barnes-Hut insertion inner loop: with
    // scalar tracking, the post-attach state (done == 1) cannot re-enter
    // the loop, so the body list stays SHSEL(body)-free — matching the
    // break-based variant.
    let src = r#"
        struct body { int m; struct body *nxt; };
        struct cell { struct cell *child; struct cell *next; struct body *body; };
        int main() {
            struct body *Lbodies;
            struct body *b;
            struct cell *root;
            struct cell *cur;
            struct cell *c;
            struct cell *q;
            int i;
            int done;
            Lbodies = NULL;
            for (i = 0; i < 6; i++) {
                b = (struct body *) malloc(sizeof(struct body));
                b->nxt = Lbodies;
                Lbodies = b;
            }
            root = (struct cell *) malloc(sizeof(struct cell));
            root->child = NULL;
            root->next = NULL;
            root->body = NULL;
            b = Lbodies;
            while (b != NULL) {
                cur = root;
                done = 0;
                while (done == 0) {
                    if (cur->child == NULL) {
                        if (cur->body == NULL) {
                            cur->body = b;
                            done = 1;
                        } else {
                            c = (struct cell *) malloc(sizeof(struct cell));
                            c->child = NULL;
                            c->next = NULL;
                            c->body = cur->body;
                            cur->body = NULL;
                            cur->child = c;
                            q = (struct cell *) malloc(sizeof(struct cell));
                            q->child = NULL;
                            q->next = cur->child;
                            q->body = NULL;
                            cur->child = q;
                        }
                    } else {
                        q = cur->child;
                        while (q->next != NULL && i % 3 == 0) {
                            q = q->next;
                        }
                        cur = q;
                    }
                }
                b = b->nxt;
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L2).unwrap();
    let lbodies = a.ir().pvar_id("Lbodies").unwrap();
    let body_sel = a.ir().types.selector_id("body").unwrap();
    assert!(
        !queries::shsel_in_region(&res.exit, lbodies, body_sel),
        "flag tracking keeps the attach states out of the loop re-entry: \
         no spurious SHSEL(body)"
    );
}

#[test]
fn havoc_forgets_flag_values() {
    // A flag reassigned from arithmetic becomes unknown: both branches stay
    // reachable.
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            int flag;
            int other;
            struct node *p;
            flag = 0;
            flag = other + 1;
            if (flag == 0) {
                p = (struct node *) malloc(sizeof(struct node));
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L1).unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    // Both the allocated and the NULL outcome must survive.
    assert!(queries::may_be_null(&res.exit, p));
    assert!(res.exit.iter().any(|g| g.pl(p).is_some()));
}

#[test]
fn contradictory_flag_paths_are_dead() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            int flag;
            struct node *p;
            flag = 3;
            if (flag == 4) {
                /* dead: p stays NULL on every live path */
                p = (struct node *) malloc(sizeof(struct node));
            }
            return 0;
        }
    "#;
    let a = analyzer(src);
    let res = a.run_at(Level::L1).unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    assert!(
        queries::always_null(&res.exit, p),
        "the flag == 4 branch is dead"
    );
}

#[test]
fn scalar_flags_differentially_sound() {
    for seed in [0u64, 1, 2, 3] {
        let src = r#"
            struct node { int v; struct node *nxt; };
            int main() {
                int done;
                struct node *list;
                struct node *p;
                int i;
                list = NULL;
                done = 0;
                while (done == 0) {
                    p = (struct node *) malloc(sizeof(struct node));
                    p->nxt = list;
                    list = p;
                    if (i > 3) {
                        done = 1;
                    }
                    i = i + 1;
                }
                return 0;
            }
        "#;
        let rep = psa::concrete::check_soundness(src, Level::L1, &[seed]);
        assert!(rep.is_sound(), "seed {seed}: {:#?}", rep.violations);
        let rep3 = psa::concrete::check_soundness(src, Level::L3, &[seed]);
        assert!(rep3.is_sound(), "L3 seed {seed}: {:#?}", rep3.violations);
    }
}
