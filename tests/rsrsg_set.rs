//! Behavioural tests of the RSRSG container: reduction, subsumption-based
//! idempotence, and the widening join.

use psa::core::rsrsg::Rsrsg;
use psa::ir::PvarId;
use psa::rsg::{builder, Level, Rsg, ShapeCtx};
use psa_cfront::types::SelectorId;

fn sel(i: u32) -> SelectorId {
    SelectorId(i)
}

#[test]
fn reinserting_covered_graphs_is_a_noop() {
    let ctx = ShapeCtx::synthetic(1, 1);
    let mut s = Rsrsg::new();
    // Insert lists of many lengths: they reduce to few graphs.
    for len in 2..10 {
        s.insert(
            builder::singly_linked_list(len, 1, PvarId(0), sel(0)),
            &ctx,
            Level::L1,
        );
    }
    let sig = s.signature();
    let size = s.len();
    // Re-inserting every concrete length again changes nothing: each is
    // subsumed by an existing member.
    for len in 2..10 {
        s.insert(
            builder::singly_linked_list(len, 1, PvarId(0), sel(0)),
            &ctx,
            Level::L1,
        );
    }
    assert_eq!(s.len(), size);
    assert_eq!(s.signature(), sig, "idempotent under covered re-insertion");
}

#[test]
fn candidate_generalizing_members_replaces_them() {
    let ctx = ShapeCtx::synthetic(1, 1);
    let mut s = Rsrsg::new();
    let concrete = builder::singly_linked_list(4, 1, PvarId(0), sel(0));
    s.insert(concrete.clone(), &ctx, Level::L1);
    // The compressed/united general list covers the concrete one.
    let general = psa::rsg::compress::compress(
        &builder::singly_linked_list(6, 1, PvarId(0), sel(0)),
        &ctx,
        Level::L1,
    );
    let j = psa::rsg::join::join(&general, &concrete, Level::L1);
    s.insert(j, &ctx, Level::L1);
    // The specific member was dropped in favour of the general one.
    assert_eq!(s.len(), 1);
}

#[test]
fn widening_respects_domains() {
    let ctx = ShapeCtx::synthetic(3, 1);
    let mut s = Rsrsg::new();
    // Graphs with different bound-pvar sets can never be force-joined.
    for p in 0..3u32 {
        s.insert(
            builder::singly_linked_list(3, 3, PvarId(p), sel(0)),
            &ctx,
            Level::L1,
        );
    }
    assert_eq!(s.len(), 3);
    s.widen(&ctx, Level::L1, 1);
    assert_eq!(s.len(), 3, "widening cannot merge different domains");
}

#[test]
fn widening_merges_same_signature_variants() {
    let ctx = ShapeCtx::synthetic(1, 2);
    let mut s = Rsrsg::new();
    // Two incompatible variants (different refpats on the head through a
    // second selector) but identical widening signatures.
    let g1 = builder::singly_linked_list(3, 1, PvarId(0), sel(0));
    let mut g2 = builder::singly_linked_list(3, 1, PvarId(0), sel(0));
    let head = g2.pl(PvarId(0)).unwrap();
    let tail = g2.node_ids().last().unwrap();
    g2.add_link(head, sel(1), tail);
    g2.node_mut(head).set_must_out(sel(1));
    g2.node_mut(tail).set_must_in(sel(1));
    s.insert(g1, &ctx, Level::L1);
    s.insert(g2, &ctx, Level::L1);
    let before = s.len();
    s.widen(&ctx, Level::L1, 1);
    assert!(s.len() <= before);
    assert_eq!(
        s.len(),
        1,
        "same-signature graphs force-join under pressure"
    );
}

#[test]
fn filter_and_map_preserve_reduction() {
    let ctx = ShapeCtx::synthetic(2, 1);
    let mut s = Rsrsg::new();
    s.insert(
        builder::singly_linked_list(3, 2, PvarId(0), sel(0)),
        &ctx,
        Level::L1,
    );
    s.insert(Rsg::empty(2), &ctx, Level::L1);
    let bound = s.filter(|g| g.pl(PvarId(0)).is_some());
    assert_eq!(bound.len(), 1);
    let cleared = s.map(&ctx, Level::L1, |g| {
        let mut g = g.clone();
        g.clear_pl(PvarId(0));
        g.gc();
        g
    });
    // Both members map to the empty graph and dedup.
    assert_eq!(cleared.len(), 1);
}

#[test]
fn scalar_facts_separate_members() {
    let ctx = ShapeCtx::synthetic(1, 1);
    let mut with_flag = Rsg::empty(1);
    with_flag.set_scalar(0, 1);
    let without = Rsg::empty(1);
    let mut s = Rsrsg::new();
    s.insert(with_flag, &ctx, Level::L1);
    s.insert(without, &ctx, Level::L1);
    // `done == 1` and `done unknown` describe different configuration sets;
    // the unknown graph subsumes the known one, so reduction keeps only it.
    assert_eq!(s.len(), 1);
    assert!(s.graphs()[0].scalar(0).is_none());

    // In the other insertion order the general member absorbs the specific
    // immediately.
    let mut s2 = Rsrsg::new();
    s2.insert(Rsg::empty(1), &ctx, Level::L1);
    let mut f = Rsg::empty(1);
    f.set_scalar(0, 1);
    s2.insert(f, &ctx, Level::L1);
    assert_eq!(s2.len(), 1);
    assert!(s2.graphs()[0].scalar(0).is_none());
}

#[test]
fn distinct_flag_values_coexist_when_not_subsumed() {
    let ctx = ShapeCtx::synthetic(1, 1);
    // Attach different *shapes* so neither subsumes the other, with
    // different flag values.
    let mut a = builder::singly_linked_list(2, 1, PvarId(0), sel(0));
    a.set_scalar(0, 0);
    let mut b = builder::singly_linked_list(3, 1, PvarId(0), sel(0));
    b.set_scalar(0, 1);
    let mut s = Rsrsg::new();
    s.insert(a, &ctx, Level::L1);
    s.insert(b, &ctx, Level::L1);
    assert_eq!(
        s.len(),
        2,
        "different flag values keep configurations apart"
    );
}
