//! Model-based differential test for the indexed adjacency representation
//! (ISSUE 3 satellite).
//!
//! `Rsg` stores links as per-node sorted out/in mirrors with a cached link
//! counter. This suite drives a random interleaving of `add_node`,
//! `add_link`, `remove_link` and `remove_node` against a trivially correct
//! reference model — a `BTreeSet<(source, sel, target)>` plus a live-node
//! set — and asserts after **every** operation that the two are
//! observationally identical through the whole accessor surface:
//! `links()`, `num_links()`, `has_link`, `succs`, `preds`, `out_links`,
//! `in_links`, and the internal mirror invariants (`check_adjacency`).

use proptest::prelude::*;
use psa::rsg::{NodeId, Rsg};
use psa_cfront::types::{SelectorId, StructId};
use std::collections::BTreeSet;

/// One raw operation; indices are interpreted modulo the live-node count at
/// application time, so every generated sequence is valid.
#[derive(Debug, Clone, Copy)]
enum Op {
    AddNode,
    /// `(source index, selector, target index)`
    AddLink(u8, u8, u8),
    RemoveLink(u8, u8, u8),
    RemoveNode(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::AddNode),
        5 => (any::<u8>(), 0u8..3, any::<u8>()).prop_map(|(a, s, b)| Op::AddLink(a, s, b)),
        3 => (any::<u8>(), 0u8..3, any::<u8>()).prop_map(|(a, s, b)| Op::RemoveLink(a, s, b)),
        1 => any::<u8>().prop_map(Op::RemoveNode),
    ]
}

/// The reference model: live ids plus a link set in BTreeSet order.
#[derive(Debug, Default)]
struct Model {
    live: Vec<NodeId>,
    links: BTreeSet<(NodeId, SelectorId, NodeId)>,
}

impl Model {
    fn pick(&self, i: u8) -> Option<NodeId> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.live[i as usize % self.live.len()])
        }
    }
}

/// Every observation the graph offers, checked against the model.
fn check_equivalent(g: &Rsg, m: &Model) {
    g.check_adjacency()
        .unwrap_or_else(|e| panic!("adjacency invariant: {e}"));
    assert_eq!(g.num_links(), m.links.len(), "num_links counter");
    let got: Vec<_> = g.links().collect();
    let want: Vec<_> = m.links.iter().copied().collect();
    assert_eq!(got, want, "links() must reproduce BTreeSet iteration order");
    assert_eq!(g.node_ids().collect::<Vec<_>>(), m.live, "live node ids");
    for &n in &m.live {
        let outs: Vec<(SelectorId, NodeId)> = m
            .links
            .iter()
            .filter(|&&(a, _, _)| a == n)
            .map(|&(_, s, b)| (s, b))
            .collect();
        // Model links sort by (source, sel, target); within one source that
        // is (sel, target) — exactly the out-mirror order.
        assert_eq!(g.out_links(n), outs, "out_links({n:?})");
        let mut ins: Vec<(NodeId, SelectorId)> = m
            .links
            .iter()
            .filter(|&&(_, _, b)| b == n)
            .map(|&(a, s, _)| (a, s))
            .collect();
        ins.sort_unstable();
        assert_eq!(g.in_links(n), ins, "in_links({n:?})");
        for s in 0..3u32 {
            let sel = SelectorId(s);
            let succs: Vec<NodeId> = outs
                .iter()
                .filter(|&&(s2, _)| s2 == sel)
                .map(|&(_, b)| b)
                .collect();
            assert_eq!(g.succs(n, sel), succs, "succs({n:?}, {s})");
            let preds: Vec<NodeId> = ins
                .iter()
                .filter(|&&(_, s2)| s2 == sel)
                .map(|&(a, _)| a)
                .collect();
            assert_eq!(g.preds(n, sel).to_vec(), preds, "preds({n:?}, {s})");
            for &b in &m.live {
                assert_eq!(
                    g.has_link(n, sel, b),
                    m.links.contains(&(n, sel, b)),
                    "has_link({n:?}, {s}, {b:?})"
                );
            }
        }
    }
}

fn apply(g: &mut Rsg, m: &mut Model, op: Op) {
    match op {
        Op::AddNode => {
            let id = g.add_fresh(StructId(0));
            m.live.push(id);
            m.live.sort_unstable();
        }
        Op::AddLink(ai, s, bi) => {
            let (Some(a), Some(b)) = (m.pick(ai), m.pick(bi)) else {
                return;
            };
            let sel = SelectorId(u32::from(s));
            let inserted = g.add_link(a, sel, b);
            assert_eq!(inserted, m.links.insert((a, sel, b)), "add_link return");
        }
        Op::RemoveLink(ai, s, bi) => {
            let (Some(a), Some(b)) = (m.pick(ai), m.pick(bi)) else {
                return;
            };
            let sel = SelectorId(u32::from(s));
            let removed = g.remove_link(a, sel, b);
            assert_eq!(removed, m.links.remove(&(a, sel, b)), "remove_link return");
        }
        Op::RemoveNode(i) => {
            let Some(n) = m.pick(i) else { return };
            g.remove_node(n);
            m.live.retain(|&x| x != n);
            m.links.retain(|&(a, _, b)| a != n && b != n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_adjacency_matches_btreeset_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut g = Rsg::empty(1);
        let mut m = Model::default();
        for op in ops {
            apply(&mut g, &mut m, op);
            check_equivalent(&g, &m);
        }
    }

    #[test]
    fn self_links_survive_model_comparison(ops in proptest::collection::vec(arb_op(), 1..40)) {
        // Seed with a node that self-links on every selector — the corner
        // the mirror bookkeeping (one link, both lists) gets wrong first.
        let mut g = Rsg::empty(1);
        let mut m = Model::default();
        let n = g.add_fresh(StructId(0));
        m.live.push(n);
        for s in 0..3u32 {
            g.add_link(n, SelectorId(s), n);
            m.links.insert((n, SelectorId(s), n));
        }
        check_equivalent(&g, &m);
        for op in ops {
            apply(&mut g, &mut m, op);
            check_equivalent(&g, &m);
        }
    }
}
