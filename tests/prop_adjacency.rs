//! Model-based differential test for the indexed adjacency representation
//! (ISSUE 3 satellite).
//!
//! `Rsg` stores links as per-node sorted out/in mirrors with a cached link
//! counter. This suite drives a random interleaving of `add_node`,
//! `add_link`, `remove_link` and `remove_node` against a trivially correct
//! reference model — a `BTreeSet<(source, sel, target)>` plus a live-node
//! set — and asserts after **every** operation that the two are
//! observationally identical through the whole accessor surface:
//! `links()`, `num_links()`, `has_link`, `succs`, `preds`, `out_links`,
//! `in_links`, and the internal mirror invariants (`check_adjacency`).
//!
//! A second model (ISSUE 7) covers the struct-of-arrays arena itself:
//! alloc / free / payload-mutate / clone-boundary interleavings against a
//! `BTreeMap<NodeId, payload>`, checking payload survival, recycled-slot
//! hygiene, and the clone-boundary free-list discipline.

use proptest::prelude::*;
use psa::rsg::{NodeId, Rsg};
use psa_cfront::types::{SelectorId, StructId};
use std::collections::{BTreeMap, BTreeSet};

/// One raw operation; indices are interpreted modulo the live-node count at
/// application time, so every generated sequence is valid.
#[derive(Debug, Clone, Copy)]
enum Op {
    AddNode,
    /// `(source index, selector, target index)`
    AddLink(u8, u8, u8),
    RemoveLink(u8, u8, u8),
    RemoveNode(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::AddNode),
        5 => (any::<u8>(), 0u8..3, any::<u8>()).prop_map(|(a, s, b)| Op::AddLink(a, s, b)),
        3 => (any::<u8>(), 0u8..3, any::<u8>()).prop_map(|(a, s, b)| Op::RemoveLink(a, s, b)),
        1 => any::<u8>().prop_map(Op::RemoveNode),
    ]
}

/// The reference model: live ids plus a link set in BTreeSet order.
#[derive(Debug, Default)]
struct Model {
    live: Vec<NodeId>,
    links: BTreeSet<(NodeId, SelectorId, NodeId)>,
}

impl Model {
    fn pick(&self, i: u8) -> Option<NodeId> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.live[i as usize % self.live.len()])
        }
    }
}

/// Every observation the graph offers, checked against the model.
fn check_equivalent(g: &Rsg, m: &Model) {
    g.check_adjacency()
        .unwrap_or_else(|e| panic!("adjacency invariant: {e}"));
    assert_eq!(g.num_links(), m.links.len(), "num_links counter");
    let got: Vec<_> = g.links().collect();
    let want: Vec<_> = m.links.iter().copied().collect();
    assert_eq!(got, want, "links() must reproduce BTreeSet iteration order");
    assert_eq!(g.node_ids().collect::<Vec<_>>(), m.live, "live node ids");
    for &n in &m.live {
        let outs: Vec<(SelectorId, NodeId)> = m
            .links
            .iter()
            .filter(|&&(a, _, _)| a == n)
            .map(|&(_, s, b)| (s, b))
            .collect();
        // Model links sort by (source, sel, target); within one source that
        // is (sel, target) — exactly the out-mirror order.
        assert_eq!(g.out_links(n), outs, "out_links({n:?})");
        let mut ins: Vec<(NodeId, SelectorId)> = m
            .links
            .iter()
            .filter(|&&(_, _, b)| b == n)
            .map(|&(a, s, _)| (a, s))
            .collect();
        ins.sort_unstable();
        assert_eq!(g.in_links(n), ins, "in_links({n:?})");
        for s in 0..3u32 {
            let sel = SelectorId(s);
            let succs: Vec<NodeId> = outs
                .iter()
                .filter(|&&(s2, _)| s2 == sel)
                .map(|&(_, b)| b)
                .collect();
            assert_eq!(g.succs(n, sel), succs, "succs({n:?}, {s})");
            let preds: Vec<NodeId> = ins
                .iter()
                .filter(|&&(_, s2)| s2 == sel)
                .map(|&(a, _)| a)
                .collect();
            assert_eq!(g.preds(n, sel).to_vec(), preds, "preds({n:?}, {s})");
            for &b in &m.live {
                assert_eq!(
                    g.has_link(n, sel, b),
                    m.links.contains(&(n, sel, b)),
                    "has_link({n:?}, {s}, {b:?})"
                );
            }
        }
    }
}

fn apply(g: &mut Rsg, m: &mut Model, op: Op) {
    match op {
        Op::AddNode => {
            let id = g.add_fresh(StructId(0));
            m.live.push(id);
            m.live.sort_unstable();
        }
        Op::AddLink(ai, s, bi) => {
            let (Some(a), Some(b)) = (m.pick(ai), m.pick(bi)) else {
                return;
            };
            let sel = SelectorId(u32::from(s));
            let inserted = g.add_link(a, sel, b);
            assert_eq!(inserted, m.links.insert((a, sel, b)), "add_link return");
        }
        Op::RemoveLink(ai, s, bi) => {
            let (Some(a), Some(b)) = (m.pick(ai), m.pick(bi)) else {
                return;
            };
            let sel = SelectorId(u32::from(s));
            let removed = g.remove_link(a, sel, b);
            assert_eq!(removed, m.links.remove(&(a, sel, b)), "remove_link return");
        }
        Op::RemoveNode(i) => {
            let Some(n) = m.pick(i) else { return };
            g.remove_node(n);
            m.live.retain(|&x| x != n);
            m.links.retain(|&(a, _, b)| a != n && b != n);
        }
    }
}

// --------------------------------------------------------------- arena model
//
// The struct-of-arrays arena recycles node slots through a free-list with a
// clone-boundary discipline: `remove_node` parks the slot in `pending_free`,
// and only a `clone()` (the rebuild boundary the engine crosses between
// kernel applications) promotes parked slots into the allocatable free list.
// This model check drives alloc / payload-mutate / free / clone-boundary
// interleavings against a `BTreeMap<NodeId, payload>` and asserts that
// payloads survive exactly as long as their node, that a recycled slot never
// leaks the previous tenant's payload, and that reuse respects the boundary
// (a slot freed *after* the last clone is never handed out).

/// One arena operation; indices modulo live count as in [`Op`].
#[derive(Debug, Clone, Copy)]
enum ArenaOp {
    /// `(ty, shared, summary)` payload for the new node.
    Alloc(u8, bool, bool),
    /// Flip a live node's payload to `(shared, summary)`.
    Mutate(u8, bool, bool),
    Free(u8),
    CloneBoundary,
}

fn arb_arena_op() -> impl Strategy<Value = ArenaOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<bool>(), any::<bool>())
            .prop_map(|(t, sh, su)| ArenaOp::Alloc(t, sh, su)),
        2 => (any::<u8>(), any::<bool>(), any::<bool>())
            .prop_map(|(i, sh, su)| ArenaOp::Mutate(i, sh, su)),
        3 => any::<u8>().prop_map(ArenaOp::Free),
        1 => Just(ArenaOp::CloneBoundary),
    ]
}

type Payload = (StructId, bool, bool);

#[derive(Debug, Default)]
struct ArenaModel {
    /// Live nodes and the payload each must still carry.
    live: BTreeMap<NodeId, Payload>,
    /// Slots freed since the last clone boundary: not yet reusable.
    parked: BTreeSet<u32>,
    /// Slots freed before the last clone boundary: reusable.
    reusable: BTreeSet<u32>,
    /// Total slots ever allocated (`Rsg::num_slots`).
    slots: usize,
}

impl ArenaModel {
    fn pick(&self, i: u8) -> Option<NodeId> {
        if self.live.is_empty() {
            return None;
        }
        self.live.keys().nth(i as usize % self.live.len()).copied()
    }
}

fn check_arena(g: &Rsg, m: &ArenaModel) {
    assert_eq!(g.num_nodes(), m.live.len(), "live count");
    assert_eq!(g.num_slots(), m.slots, "slot count");
    assert_eq!(
        g.node_ids().collect::<Vec<_>>(),
        m.live.keys().copied().collect::<Vec<_>>(),
        "live id set"
    );
    for (&id, &(ty, shared, summary)) in &m.live {
        assert!(g.is_live(id));
        let n = g.node(id);
        assert_eq!(n.ty, ty, "payload ty of {id:?}");
        assert_eq!(n.shared, shared, "payload shared of {id:?}");
        assert_eq!(n.summary, summary, "payload summary of {id:?}");
    }
    for &slot in m.parked.iter().chain(&m.reusable) {
        assert!(!g.is_live(NodeId(slot)), "freed slot {slot} reads live");
    }
}

fn apply_arena(g: &mut Rsg, m: &mut ArenaModel, op: ArenaOp) {
    match op {
        ArenaOp::Alloc(t, sh, su) => {
            let ty = StructId(u32::from(t) % 4);
            let id = g.add_fresh(ty);
            let nm = g.node_mut(id);
            *nm.shared = sh;
            *nm.summary = su;
            // Reuse discipline: a fresh id either grows the arena or
            // recycles a slot freed before the last clone boundary —
            // never a live slot, never one parked since the boundary.
            if id.0 as usize == m.slots {
                m.slots += 1;
            } else {
                assert!(
                    m.reusable.remove(&id.0),
                    "alloc returned {id:?}: not fresh, not a pre-boundary free slot"
                );
            }
            assert!(!m.parked.contains(&id.0), "reused a parked slot {id:?}");
            let prev = m.live.insert(id, (ty, sh, su));
            assert!(prev.is_none(), "alloc returned live id {id:?}");
        }
        ArenaOp::Mutate(i, sh, su) => {
            let Some(id) = m.pick(i) else { return };
            let nm = g.node_mut(id);
            *nm.shared = sh;
            *nm.summary = su;
            let p = m.live.get_mut(&id).unwrap();
            p.1 = sh;
            p.2 = su;
        }
        ArenaOp::Free(i) => {
            let Some(id) = m.pick(i) else { return };
            g.remove_node(id);
            m.live.remove(&id);
            m.parked.insert(id.0);
        }
        ArenaOp::CloneBoundary => {
            let copy = g.clone();
            assert_eq!(&copy, g, "clone must be observationally identical");
            *g = copy;
            let parked = std::mem::take(&mut m.parked);
            m.reusable.extend(parked);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arena_alloc_free_reuse_matches_payload_model(
        ops in proptest::collection::vec(arb_arena_op(), 1..120),
    ) {
        let mut g = Rsg::empty(1);
        let mut m = ArenaModel::default();
        for op in ops {
            apply_arena(&mut g, &mut m, op);
            check_arena(&g, &m);
        }
    }

    #[test]
    fn indexed_adjacency_matches_btreeset_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut g = Rsg::empty(1);
        let mut m = Model::default();
        for op in ops {
            apply(&mut g, &mut m, op);
            check_equivalent(&g, &m);
        }
    }

    #[test]
    fn self_links_survive_model_comparison(ops in proptest::collection::vec(arb_op(), 1..40)) {
        // Seed with a node that self-links on every selector — the corner
        // the mirror bookkeeping (one link, both lists) gets wrong first.
        let mut g = Rsg::empty(1);
        let mut m = Model::default();
        let n = g.add_fresh(StructId(0));
        m.live.push(n);
        for s in 0..3u32 {
            g.add_link(n, SelectorId(s), n);
            m.links.insert((n, SelectorId(s), n));
        }
        check_equivalent(&g, &m);
        for op in ops {
            apply(&mut g, &mut m, op);
            check_equivalent(&g, &m);
        }
    }
}
