//! Integration tests for the sparse-code suite (§5, Table 1 rows 1–3):
//! all three sparse codes must be *accurately analyzed at L1* — the matrix
//! headers are unshared list-of-list structures, the result structures are
//! unaliased, and the analysis converges.

use psa::codes::{sparse_lu, sparse_matmat, sparse_matvec, Sizes};
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::queries::{self, ShapeClass};
use psa::rsg::Level;

fn analyzer(src: &str) -> Analyzer {
    Analyzer::new(src, AnalysisOptions::at_level(Level::L1)).expect("code lowers")
}

#[test]
fn matvec_l1_shapes() {
    let a = analyzer(&sparse_matvec(Sizes::default()));
    let res = a.run().expect("converges");
    let ir = a.ir();

    // The matrix A is an unshared list-of-lists.
    let rep_a = queries::structure_report(&res.exit, ir.pvar_id("A").unwrap());
    assert!(
        !rep_a.any_shared,
        "matrix rows/elements are unshared: {rep_a}"
    );
    assert!(rep_a.shared_selectors.is_empty());

    // Vectors x and y are plain lists.
    for v in ["x", "y"] {
        let rep = queries::structure_report(&res.exit, ir.pvar_id(v).unwrap());
        assert!(
            matches!(rep.class, ShapeClass::List | ShapeClass::Empty),
            "{v} must be a list, got {rep}"
        );
    }

    // A and x never alias; y is freshly built.
    assert!(!queries::may_alias(
        &res.exit,
        ir.pvar_id("A").unwrap(),
        ir.pvar_id("x").unwrap()
    ));
}

#[test]
fn matmat_l1_shapes() {
    let a = analyzer(&sparse_matmat(Sizes::default()));
    let res = a.run().expect("converges");
    let ir = a.ir();
    for m in ["A", "B", "C"] {
        let rep = queries::structure_report(&res.exit, ir.pvar_id(m).unwrap());
        assert!(!rep.any_shared, "{m} must be unshared: {rep}");
    }
    // The three matrices are disjoint structures.
    for (p, q) in [("A", "B"), ("A", "C"), ("B", "C")] {
        assert!(!queries::may_alias(
            &res.exit,
            ir.pvar_id(p).unwrap(),
            ir.pvar_id(q).unwrap()
        ));
    }
}

#[test]
fn lu_l1_shapes() {
    let a = analyzer(&sparse_lu(Sizes::default()));
    let res = a.run().expect("converges");
    let ir = a.ir();
    let rep = queries::structure_report(&res.exit, ir.pvar_id("M").unwrap());
    // Despite in-place updates and fill-in insertion, the column lists stay
    // unshared.
    assert!(!rep.any_shared, "LU matrix must stay unshared: {rep}");
    assert!(rep.shared_selectors.is_empty());
}

#[test]
fn sparse_codes_all_levels_converge() {
    for (name, src) in psa::codes::table1_codes(Sizes::default()) {
        if name == "Barnes-Hut" {
            continue; // covered by its own test file
        }
        let a = analyzer(&src);
        for level in Level::ALL {
            let res = a
                .run_at(level)
                .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
            assert!(!res.exit.is_empty(), "{name} at {level} reaches exit");
        }
    }
}

#[test]
fn l1_results_independent_of_loop_counts() {
    // The fixed point abstracts loop counts away: two sizes produce the
    // same exit RSRSG.
    let a1 = analyzer(&sparse_matvec(Sizes { n: 5, m: 3 }));
    let a2 = analyzer(&sparse_matvec(Sizes { n: 50, m: 20 }));
    let r1 = a1.run().unwrap();
    let r2 = a2.run().unwrap();
    assert!(
        r1.exit.same_as(&r2.exit),
        "exit shape must not depend on sizes"
    );
}

#[test]
fn matvec_parallel_row_loop() {
    // The outer product loop writes only the freshly allocated result
    // node and the per-row accumulation: the parallelism client must not
    // find cross-iteration conflicts.
    let a = analyzer(&sparse_matvec(Sizes::default()));
    let res = a.run().unwrap();
    let ir = a.ir();
    let reports = psa::core::parallel::loop_reports(ir, &res);
    // Find the row loop: ipvars contain `r` and it has heap writes (the
    // result vector appends).
    let r = ir.pvar_id("r").unwrap();
    let row_loop = reports
        .iter()
        .find(|rep| rep.ipvars.contains(&r) && !rep.heap_writes.is_empty())
        .expect("row loop found");
    assert!(
        row_loop.parallelizable,
        "row-wise Mat-Vec is the paper's canonical parallel loop: {:?}",
        row_loop.reasons
    );
}
