//! Corpus replay: every minimized/curated program under `tests/corpus/` is
//! re-checked at all three analysis levels on every `cargo test`. Each
//! program carries `// @assert …; expect …` annotations; the replay
//! verifies the combined abstract+concrete verdict matches, and that no
//! assertion exposes a soundness mismatch (abstract `holds`, concretely
//! refuted). Programs found by the fuzzing farm land here after
//! minimization so regressions stay caught.

use psa::cfront::asserts::ExpectedVerdict;
use psa::concrete::asserts::{check_asserts, Verdict};
use psa::rsg::Level;
use std::path::PathBuf;

const SEEDS: &[u64] = &[1, 2, 3, 4];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("c")).then_some(p)
        })
        .collect();
    files.sort();
    files
}

fn level_index(level: Level) -> u8 {
    match level {
        Level::L1 => 1,
        Level::L2 => 2,
        Level::L3 => 3,
    }
}

fn matches_expected(got: Verdict, want: ExpectedVerdict) -> bool {
    matches!(
        (got, want),
        (Verdict::Holds, ExpectedVerdict::Holds)
            | (Verdict::MayFail, ExpectedVerdict::MayFail)
            | (
                Verdict::ConcreteViolation,
                ExpectedVerdict::ConcreteViolation
            )
    )
}

#[test]
fn corpus_is_non_trivial() {
    assert!(
        corpus_files().len() >= 10,
        "corpus shrank below 10 programs"
    );
}

#[test]
fn corpus_replays_at_all_levels() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        for level in Level::ALL {
            let rep = check_asserts(&src, level, SEEDS)
                .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
            assert!(
                rep.inconclusive.is_none(),
                "{name} at {level}: corpus programs must analyze to fixpoint"
            );
            assert!(
                rep.soundness_mismatches().is_empty(),
                "{name} at {level}: SOUNDNESS MISMATCH {:#?}",
                rep.soundness_mismatches()
            );
            assert!(
                !rep.outcomes.is_empty(),
                "{name}: corpus program carries no assertions"
            );
            for o in &rep.outcomes {
                for exp in &o.assertion.expect {
                    if exp.level.is_some_and(|l| l != level_index(level)) {
                        continue;
                    }
                    assert!(
                        matches_expected(o.verdict, exp.verdict),
                        "{name} at {level}, line {}: `{}` expected {}, got {} \
                         (abstract {}, {} concrete states, {} violations)",
                        o.assertion.line,
                        o.assertion.text,
                        exp.verdict.as_str(),
                        o.verdict,
                        o.abstract_verdict,
                        o.concrete_checked,
                        o.concrete_violations
                    );
                }
            }
        }
    }
}

#[test]
fn every_corpus_assertion_carries_an_expectation() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let raws = psa::cfront::asserts::extract_asserts(&src).unwrap();
        for r in &raws {
            assert!(
                !r.expect.is_empty(),
                "{}: line {} `{}` has no `; expect` annotation",
                path.display(),
                r.line,
                r.render()
            );
        }
    }
}
