//! Snapshot round-trip suite (warm-start ISSUE satellite): after analyzing
//! each paper code, the shared tables serialize to a snapshot and restore
//! to an observably equivalent warm state — re-analysis under the restored
//! tables produces a bit-identical JSON report (timing/ops stats aside)
//! and replays memoized transfers instead of recomputing them. Damaged
//! snapshots (truncated, bit-flipped, wrong version, not a snapshot at
//! all) fail with a typed [`AnalysisError::Snapshot`], never a panic.

use psa::codes::{table1_codes, Sizes};
use psa::core::engine::{AnalysisError, AnalysisResult};
use psa::core::json::Json;
use psa::core::report::build_report;
use psa::core::{AnalysisOptions, Analyzer};
use psa::rsg::{snapshot, Level, SharedTables};
use std::sync::Arc;

/// Analyze `src` at L2 over the given tables, returning the report JSON
/// with the `stats` section stripped (wall-clock and per-run op counts are
/// the two fields that legitimately differ between a cold and a warm run)
/// plus the raw result for op-counter assertions.
fn analyze_with(src: &str, tables: Arc<SharedTables>) -> (Json, AnalysisResult) {
    let mut options = AnalysisOptions::at_level(Level::L2);
    options.inline = true;
    options.tables = Some(tables);
    let analyzer = Analyzer::new(src, options).expect("paper code parses");
    let result = analyzer.run().expect("analysis succeeds");
    let mut json = build_report(analyzer.ir(), &result).to_json();
    json.remove("stats");
    (json, result)
}

#[test]
fn restored_snapshot_reanalysis_is_bit_identical_and_warm() {
    for (name, src) in table1_codes(Sizes::tiny()) {
        let tables = Arc::new(SharedTables::new());
        let (cold_json, _) = analyze_with(&src, Arc::clone(&tables));

        let bytes = snapshot::to_bytes(&tables);
        let restored = Arc::new(snapshot::from_bytes(&bytes).expect("snapshot restores"));
        let (warm_json, warm) = analyze_with(&src, Arc::clone(&restored));

        assert_eq!(
            cold_json.compact(),
            warm_json.compact(),
            "{name}: report diverged after snapshot restore"
        );
        let ops = &warm.stats.ops;
        assert!(
            ops.transfer_memo_hits > 0,
            "{name}: restored transfer memo must replay transfers"
        );
        assert_eq!(
            ops.transfer_memo_misses, 0,
            "{name}: resubmitting the identical program must miss nothing"
        );
        assert!(
            ops.intern_hits > 0,
            "{name}: restored interner must answer canonicalizations"
        );
    }
}

#[test]
fn snapshot_files_roundtrip_on_disk() {
    let dir = std::env::temp_dir().join(format!("psa_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warm.psas");

    let (_, src) = table1_codes(Sizes::tiny()).remove(0);
    let tables = Arc::new(SharedTables::new());
    let (cold_json, _) = analyze_with(&src, Arc::clone(&tables));
    snapshot::save(&tables, &path).expect("snapshot saves");

    let restored = Arc::new(snapshot::load(&path).expect("snapshot loads"));
    let (warm_json, warm) = analyze_with(&src, restored);
    assert_eq!(cold_json.compact(), warm_json.compact());
    assert!(warm.stats.ops.transfer_memo_hits > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_snapshots_fail_with_typed_errors() {
    let (_, src) = table1_codes(Sizes::tiny()).remove(0);
    let tables = Arc::new(SharedTables::new());
    analyze_with(&src, Arc::clone(&tables));
    let bytes = snapshot::to_bytes(&tables);

    let typed = |err: snapshot::SnapshotError| -> AnalysisError {
        let converted = AnalysisError::from(err);
        assert!(
            matches!(converted, AnalysisError::Snapshot { .. }),
            "snapshot failures must surface as AnalysisError::Snapshot, got {converted:?}"
        );
        converted
    };

    // Truncation at every decile: typed error, never a panic.
    for i in 1..10 {
        let cut = bytes.len() * i / 10;
        let err = snapshot::from_bytes(&bytes[..cut]).expect_err("truncated snapshot must fail");
        typed(err);
    }

    // A flipped payload bit fails the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    typed(snapshot::from_bytes(&flipped).expect_err("corrupt snapshot must fail"));

    // Garbage that is not a snapshot at all.
    typed(snapshot::from_bytes(b"definitely not a snapshot").expect_err("garbage must fail"));

    // A missing file is an I/O failure, also typed.
    typed(snapshot::load("/nonexistent/psa-warm.psas").expect_err("missing file must fail"));
}
