//! Integration tests for experiment F3 (§5.1, Fig. 3): Barnes-Hut across
//! the three progressive levels.
//!
//! Qualitative claims checked:
//! * at every level the analysis converges and the body list keeps
//!   `SHSEL(body) = false` on its summary (each octree leaf points at its
//!   own body) — the paper needed L2 for this; our `C_SPATH0` plus sharing
//!   relaxation already achieve it at L1, which is *more* precise, never
//!   less (EXPERIMENTS.md discusses the difference);
//! * the octree cells are SHARED (they are referenced both by their parent
//!   and by the traversal stack), which blocks the force-phase
//!   parallelization below L3;
//! * at L3 the TOUCH property marks the loop-current body, and the force
//!   loop is reported parallelizable — the paper's headline claim for the
//!   progressive analysis.

use psa::codes::{barnes_hut, Sizes};
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::progressive::Goal;
use psa::core::{parallel, queries};
use psa::ir::LoopId;
use psa::rsg::Level;

fn analyzer() -> Analyzer {
    Analyzer::new(&barnes_hut(Sizes::default()), AnalysisOptions::default())
        .expect("Barnes-Hut lowers")
}

fn force_loop(ir: &psa::ir::FuncIr) -> LoopId {
    let b = ir.pvar_id("b").unwrap();
    (0..ir.loops.len())
        .rev()
        .map(|i| LoopId(i as u32))
        .find(|l| ir.loops[l.0 as usize].ipvars.contains(&b))
        .expect("force loop traverses b")
}

#[test]
fn converges_at_all_levels() {
    let a = analyzer();
    for level in Level::ALL {
        let res = a.run_at(level).unwrap_or_else(|e| panic!("{level}: {e}"));
        assert!(!res.exit.is_empty(), "{level} must reach exit");
    }
}

#[test]
fn body_list_never_shsel_shared_through_body() {
    let a = analyzer();
    let ir = a.ir();
    let lbodies = ir.pvar_id("Lbodies").unwrap();
    let body = ir.types.selector_id("body").unwrap();
    for level in Level::ALL {
        let res = a.run_at(level).unwrap();
        assert!(
            !queries::shsel_in_region(&res.exit, lbodies, body),
            "{level}: no two octree leaves may point at the same body"
        );
    }
}

#[test]
fn octree_cells_shared_from_stack_during_traversal() {
    // During phase (ii)/(iii) the stack references tree cells: the cells
    // are SHARED in the RSRSGs inside those loops.
    let a = analyzer();
    let ir = a.ir();
    let res = a.run_at(Level::L2).unwrap();
    // Find a statement inside a stack loop: `cur = top->node`.
    let cur = ir.pvar_id("cur").unwrap();
    let node_sel = ir.types.selector_id("node").unwrap();
    let mut found_shared_cell = false;
    for (i, info) in ir.stmts.iter().enumerate() {
        if let psa::ir::Stmt::Ptr(psa::ir::PtrStmt::Load(x, _, s)) = info.stmt {
            if x == cur && s == node_sel {
                let rsrsg = res.at(psa::ir::StmtId(i as u32));
                for g in rsrsg.iter() {
                    if let Some(n) = g.pl(cur) {
                        if g.node(n).shared {
                            found_shared_cell = true;
                        }
                    }
                }
            }
        }
    }
    assert!(
        found_shared_cell,
        "tree cells must be observed SHARED while the stack references them"
    );
}

#[test]
fn force_loop_blocked_below_l3_parallel_at_l3() {
    let a = analyzer();
    let ir = a.ir();
    let fl = force_loop(ir);

    let res2 = a.run_at(Level::L2).unwrap();
    let rep2 = parallel::loop_report(ir, &res2, fl);
    assert!(
        !rep2.parallelizable,
        "at L2 the written body is shared (list + leaf) and TOUCH is absent"
    );

    let res3 = a.run_at(Level::L3).unwrap();
    let rep3 = parallel::loop_report(ir, &res3, fl);
    assert!(
        rep3.parallelizable,
        "at L3 TOUCH identifies the written body as the loop-current element: {:?}",
        rep3.reasons
    );
}

#[test]
fn progressive_driver_escalates_to_l3_for_parallel_goal() {
    let a = analyzer();
    let ir = a.ir();
    let fl = force_loop(ir);
    let outcome = a.run_progressive(vec![Goal::LoopParallel { loop_id: fl }]);
    assert_eq!(
        outcome.satisfied_at,
        Some(Level::L3),
        "the paper's Barnes-Hut story: L1/L2 insufficient, L3 succeeds"
    );
    assert_eq!(outcome.levels.len(), 3);
}

#[test]
fn stack_and_tree_regions_disjoint_from_bodies_list_spine() {
    let a = analyzer();
    let ir = a.ir();
    let res = a.run_at(Level::L1).unwrap();
    // root (octree) and Lbodies never alias; the stack is gone at exit.
    let root = ir.pvar_id("root").unwrap();
    let lbodies = ir.pvar_id("Lbodies").unwrap();
    assert!(!queries::may_alias(&res.exit, root, lbodies));
    let top = ir.pvar_id("top").unwrap();
    assert!(
        queries::always_null(&res.exit, top),
        "stack fully popped at exit"
    );
}
