//! End-to-end frontend coverage: the exact C-subset boundary, error
//! reporting quality, and normalization fidelity on awkward-but-legal
//! inputs.

use psa::core::api::Error;
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::rsg::Level;

fn analyze(src: &str) -> Result<(), String> {
    let a = Analyzer::new(src, AnalysisOptions::at_level(Level::L1)).map_err(|e| e.to_string())?;
    a.run().map(|_| ()).map_err(|e| e.to_string())
}

#[test]
fn typedefs_through_the_whole_pipeline() {
    let src = r#"
        struct cell { int v; struct cell *nxt; };
        typedef struct cell cell_t;
        typedef cell_t *list_t;
        int main() {
            list_t head;
            cell_t *p;
            head = NULL;
            p = (cell_t *) malloc(sizeof(struct cell));
            p->nxt = head;
            head = p;
            return 0;
        }
    "#;
    analyze(src).expect("typedef chains resolve");
}

#[test]
fn do_while_and_compound_assign() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *list;
            struct node *p;
            int i;
            list = NULL;
            i = 0;
            do {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                list = p;
                i += 1;
            } while (i < 5);
            return 0;
        }
    "#;
    analyze(src).expect("do-while and += lower");
}

#[test]
fn ternary_pointer_assignment() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *a;
            struct node *b;
            struct node *c;
            int k;
            a = (struct node *) malloc(sizeof(struct node));
            b = (struct node *) malloc(sizeof(struct node));
            c = (k > 0) ? a : b;
            return 0;
        }
    "#;
    analyze(src).expect("pointer ternary lowers to if/else");
}

#[test]
fn deep_member_chains() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *a;
            a = (struct node *) malloc(sizeof(struct node));
            a->nxt = (struct node *) malloc(sizeof(struct node));
            a->nxt->nxt = (struct node *) malloc(sizeof(struct node));
            a->nxt->nxt->nxt = a;
            a->nxt->nxt->nxt->nxt->v = 7;
            return 0;
        }
    "#;
    analyze(src).expect("4-deep chains normalize through temporaries");
}

#[test]
fn short_circuit_mixed_conditions() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *p;
            struct node *q;
            int i;
            p = (struct node *) malloc(sizeof(struct node));
            if (p != NULL && (i < 3 || p == q) && p->nxt == NULL) {
                p->v = 1;
            }
            return 0;
        }
    "#;
    analyze(src).expect("mixed &&/|| with pointer and scalar leaves");
}

#[test]
fn global_pointer_initializer_order() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        struct node *g1;
        struct node *g2;
        int main() {
            g1 = (struct node *) malloc(sizeof(struct node));
            g2 = g1;
            return 0;
        }
    "#;
    analyze(src).expect("globals registered before body");
}

#[test]
fn errors_are_informative() {
    // Arrays.
    let e = analyze("int main() { int a[4]; return 0; }").unwrap_err();
    assert!(e.contains("array"), "{e}");
    // Unknown struct.
    let e = analyze("struct a { struct nope *p; }; int main() { return 0; }").unwrap_err();
    assert!(e.contains("unknown struct"), "{e}");
    // Struct by value.
    let e = analyze("struct a { int v; }; int main() { struct a x; return 0; }").unwrap_err();
    assert!(e.contains("struct value") || e.contains("pointers"), "{e}");
    // Unknown call with pointer argument.
    let e = analyze("struct a { struct a *n; }; int main() { struct a *p; frob(p); return 0; }")
        .unwrap_err();
    assert!(e.contains("inline"), "{e}");
}

#[test]
fn frontend_error_type_roundtrip() {
    match Analyzer::new("int main() { ??? }", AnalysisOptions::default()) {
        Err(Error::Frontend(d)) => {
            assert!(d.span.line >= 1);
        }
        Err(other) => panic!("expected frontend error, got {other}"),
        Ok(_) => panic!("expected frontend error, got success"),
    }
}

#[test]
fn null_vs_zero_literal() {
    // `p = 0` is the null pointer constant, same as `p = NULL`.
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *p;
            struct node *q;
            p = 0;
            q = NULL;
            return 0;
        }
    "#;
    let a = Analyzer::new(src, AnalysisOptions::default()).unwrap();
    let res = a.run().unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    let q = a.ir().pvar_id("q").unwrap();
    assert!(psa::core::queries::always_null(&res.exit, p));
    assert!(psa::core::queries::always_null(&res.exit, q));
}

#[test]
fn comments_and_preprocessor_skipped() {
    let src = r#"
        #include <stdlib.h>
        /* a matrix of
           comments */
        struct node { int v; struct node *nxt; }; // trailing
        int main() {
            struct node *p; // decl
            p = NULL; /* assignment */
            return 0;
        }
    "#;
    analyze(src).expect("trivia ignored");
}

#[test]
fn multiple_functions_only_entry_analyzed() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int helper_scalar(int a, int b) { return a + b; }
        int main() {
            struct node *p;
            int x;
            x = helper_scalar(1, 2);
            p = (struct node *) malloc(sizeof(struct node));
            return 0;
        }
    "#;
    // helper_scalar is inlined (scalar-only), analysis proceeds.
    analyze(src).expect("scalar helper inlines");
}

#[test]
fn switch_statement_lowers_to_chain() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            int mode;
            struct node *p;
            p = NULL;
            switch (mode) {
                case 0:
                    p = (struct node *) malloc(sizeof(struct node));
                    break;
                case 1:
                    p = NULL;
                    break;
                default:
                    p = (struct node *) malloc(sizeof(struct node));
            }
            return 0;
        }
    "#;
    let a = Analyzer::new(src, AnalysisOptions::default()).unwrap();
    let res = a.run().unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    // Both outcomes reachable (mode unknown).
    assert!(psa::core::queries::may_be_null(&res.exit, p));
    assert!(res.exit.iter().any(|g| g.pl(p).is_some()));
}

#[test]
fn switch_on_known_flag_is_precise() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            int mode;
            struct node *p;
            p = NULL;
            mode = 1;
            switch (mode) {
                case 0:
                    p = (struct node *) malloc(sizeof(struct node));
                    break;
                case 1:
                    p = NULL;
                    break;
                default:
                    p = (struct node *) malloc(sizeof(struct node));
            }
            return 0;
        }
    "#;
    let a = Analyzer::new(src, AnalysisOptions::default()).unwrap();
    let res = a.run().unwrap();
    let p = a.ir().pvar_id("p").unwrap();
    assert!(
        psa::core::queries::always_null(&res.exit, p),
        "only the case-1 arm is live when mode == 1"
    );
}

#[test]
fn switch_fallthrough_rejected() {
    let src = r#"
        int main() {
            int m;
            switch (m) {
                case 0:
                    m = 1;
                case 1:
                    m = 2;
                    break;
            }
            return 0;
        }
    "#;
    let err = Analyzer::new(src, AnalysisOptions::default());
    assert!(err.is_err(), "fallthrough is outside the subset");
}
