//! Property-based differential soundness: random well-typed pointer
//! programs are analyzed and then executed concretely; every concrete state
//! must be covered by the RSRSG at its statement. This is the repository's
//! strongest end-to-end correctness evidence.

use proptest::prelude::*;
use psa::codes::generators::random_program;
use psa::concrete::check_soundness;
use psa::rsg::Level;

proptest! {
    // Each case runs a full analysis + two executions; keep the counts
    // moderate so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_sound_at_l1(seed in 0u64..10_000) {
        let src = random_program(seed, 20, 4);
        let rep = check_soundness(&src, Level::L1, &[seed, seed ^ 0xdead]);
        prop_assert!(
            rep.is_sound(),
            "seed {}: {:#?}\nprogram:\n{}",
            seed,
            rep.violations,
            src
        );
    }

    #[test]
    fn random_programs_sound_at_l3(seed in 0u64..10_000) {
        let src = random_program(seed, 16, 3);
        let rep = check_soundness(&src, Level::L3, &[seed]);
        prop_assert!(
            rep.is_sound(),
            "seed {}: {:#?}\nprogram:\n{}",
            seed,
            rep.violations,
            src
        );
    }
}

#[test]
fn paper_codes_differentially_sound_at_l1() {
    // The tiny sizes keep concrete executions short; the analysis result is
    // size-independent anyway.
    let sizes = psa::codes::Sizes::tiny();
    for (name, src) in [
        ("matvec", psa::codes::sparse_matvec(sizes)),
        ("matmat", psa::codes::sparse_matmat(sizes)),
        ("lu", psa::codes::sparse_lu(sizes)),
        ("barnes-hut", psa::codes::barnes_hut(sizes)),
    ] {
        // Several seeds: opaque loop bounds are coin flips, so any single
        // execution may exit the build loops immediately and leave too few
        // trace points to be meaningful.
        let rep = check_soundness(&src, Level::L1, &[1, 2, 3, 6, 12]);
        assert!(rep.is_sound(), "{name}: {:#?}", rep.violations);
        assert!(rep.checked_points > 20, "{name}: trace too short");
    }
}

#[test]
fn barnes_hut_differentially_sound_at_l3() {
    let src = psa::codes::barnes_hut(psa::codes::Sizes::tiny());
    let rep = check_soundness(&src, Level::L3, &[7]);
    assert!(rep.is_sound(), "{:#?}", rep.violations);
}
