//! In-process daemon session suite (warm-start ISSUE tentpole): drives
//! [`psa::core::serve::Server`] through a multi-request lifetime and checks
//! the warm-table contract end to end — warm resubmissions are bit-
//! identical to cold runs and replay memoized transfers, per-request op
//! counters are isolated while the `server` section accumulates, edits go
//! through the incremental `reanalyze` path, and a snapshot saved by one
//! server warms a freshly started one.

use psa::codes::{sparse_matvec, Sizes};
use psa::core::json::Json;
use psa::core::serve::{ServeOptions, Server};

fn request(id: i64, method: &str, params: Json) -> Json {
    let mut r = Json::obj();
    r.set("id", id);
    r.set("method", method);
    r.set("params", params);
    r
}

fn analyze_params(source: &str, key: &str) -> Json {
    let mut p = Json::obj();
    p.set("source", source);
    p.set("level", "L2");
    p.set("key", key);
    p
}

/// The analysis report from an ok response, with the `stats` section
/// stripped (wall-clock and per-run op counts legitimately differ between
/// cold and warm runs — everything else must be bit-identical).
fn report_sans_stats(resp: &Json) -> Json {
    let mut report = resp
        .get("result")
        .expect("ok response")
        .get("report")
        .expect("report")
        .clone();
    report.remove("stats");
    report
}

fn op(resp: &Json, counter: &str) -> i64 {
    resp.get("result")
        .unwrap()
        .get("report")
        .unwrap()
        .get("stats")
        .unwrap()
        .get("ops")
        .unwrap()
        .get(counter)
        .and_then(Json::as_i64)
        .unwrap()
}

fn server_op(resp: &Json, counter: &str) -> i64 {
    resp.get("result")
        .unwrap()
        .get("server")
        .unwrap()
        .get("ops")
        .unwrap()
        .get(counter)
        .and_then(Json::as_i64)
        .unwrap()
}

#[test]
fn warm_resubmission_is_bit_identical_with_isolated_counters() {
    let src = sparse_matvec(Sizes::tiny());
    let server = Server::new(ServeOptions::default());

    let cold = server.handle(request(1, "analyze", analyze_params(&src, "mv")));
    let warm = server.handle(request(2, "analyze", analyze_params(&src, "mv")));

    assert_eq!(
        report_sans_stats(&cold).compact(),
        report_sans_stats(&warm).compact(),
        "warm daemon report diverged from the cold one"
    );
    assert!(
        op(&warm, "transfer_memo_hits") > 0,
        "warm request must replay memoized transfers"
    );
    assert_eq!(
        op(&warm, "transfer_memo_misses"),
        0,
        "identical resubmission must miss nothing"
    );

    // Per-request counters reset between requests; the server section
    // accumulates across the process lifetime.
    let cold_q = op(&cold, "transfer_queries");
    let warm_q = op(&warm, "transfer_queries");
    assert!(
        warm_q <= cold_q,
        "per-request ops leaked across requests: warm {warm_q} > cold {cold_q}"
    );
    assert!(server_op(&warm, "transfer_queries") >= cold_q + warm_q);

    let stats = server.handle(request(3, "stats", Json::obj()));
    let requests = stats
        .get("result")
        .unwrap()
        .get("server")
        .unwrap()
        .get("requests")
        .and_then(Json::as_i64)
        .unwrap();
    assert_eq!(requests, 2, "stats must count the two analyze requests");
}

#[test]
fn reanalyze_after_edit_is_incremental_and_stays_warm() {
    let src = sparse_matvec(Sizes::tiny());
    let server = Server::new(ServeOptions::default());
    server.handle(request(1, "analyze", analyze_params(&src, "mv")));

    // Edit one statement without touching types or control flow: the
    // re-analysis must take the incremental path, name the edited
    // statements, and still replay the unchanged statements' transfers.
    let edited = src.replacen("= 0;", "= 1;", 1);
    assert_ne!(src, edited, "the edit must apply");
    let resp = server.handle(request(2, "reanalyze", analyze_params(&edited, "mv")));
    let result = resp.get("result").expect("ok response");
    assert_eq!(
        result.get("incremental").and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        !result
            .get("changed_stmts")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "the edited statement must be reported"
    );
    assert!(
        op(&resp, "transfer_memo_hits") > 0,
        "unchanged statements must replay from the warm memo"
    );
}

#[test]
fn snapshot_saved_by_one_server_warms_a_fresh_one() {
    let dir = std::env::temp_dir().join(format!("psa_serve_session_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warm.psas");
    let path_str = path.to_str().unwrap().to_string();
    let src = sparse_matvec(Sizes::tiny());

    let first = Server::new(ServeOptions::default());
    let cold = first.handle(request(1, "analyze", analyze_params(&src, "mv")));
    let saved = first.handle(request(2, "save_cache", {
        let mut p = Json::obj();
        p.set("path", path_str.as_str());
        p
    }));
    assert!(
        saved.get("result").is_some(),
        "save_cache failed: {saved:?}"
    );

    let second = Server::new(ServeOptions::default());
    let loaded = second.handle(request(1, "load_cache", {
        let mut p = Json::obj();
        p.set("path", path_str.as_str());
        p
    }));
    assert!(
        loaded.get("result").is_some(),
        "load_cache failed: {loaded:?}"
    );
    let warm = second.handle(request(2, "analyze", analyze_params(&src, "mv")));

    assert_eq!(
        report_sans_stats(&cold).compact(),
        report_sans_stats(&warm).compact(),
        "report after snapshot hand-off diverged"
    );
    assert!(op(&warm, "transfer_memo_hits") > 0);
    assert_eq!(op(&warm, "transfer_memo_misses"), 0);

    std::fs::remove_dir_all(&dir).ok();
}
