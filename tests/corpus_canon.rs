//! Corpus canonical-byte pinning (ISSUE 7 satellite).
//!
//! The arena/sharding/batched-canon rework must not change a single
//! analysis outcome: this suite replays every program under
//! `tests/corpus/` at L1/L2/L3 and pins an FNV-1a hash of the exit
//! RSRSG's full canonical signature (the sorted canonical byte strings
//! of every member graph). The pins were generated on the pre-arena
//! `Vec<Option<Node>>` layout, so a green run is a machine-checked
//! bit-identity proof that the data-oriented storage rewrite preserved
//! both verdicts (see `corpus_replay.rs`) and canonical bytes.
//!
//! If a pin fails after an *intentional* encoding or semantics change,
//! regenerate with `cargo test --test corpus_canon -- --nocapture`
//! (each failure prints the fresh hash) and note the break in DESIGN.md.

use psa::core::api::{analyze_source, AnalysisOptions};
use psa::rsg::Level;
use std::path::PathBuf;

/// FNV-1a, 64-bit — matches `golden_canon.rs`.
fn fnv64(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn exit_signature_hash(src: &str, level: Level) -> u64 {
    let opts = AnalysisOptions {
        level: Some(level),
        ..AnalysisOptions::default()
    };
    let res = analyze_source(src, opts).expect("corpus program analyzes");
    assert!(
        res.stopped.is_none(),
        "corpus programs must run to fixpoint"
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in res.exit.signature() {
        fnv64(&mut h, &bytes);
        // Separator so concatenation ambiguity can't alias two sets.
        fnv64(&mut h, &[0xFF, 0x00]);
    }
    h
}

/// `(file, L1 hash, L2 hash, L3 hash)` — regenerate with `--nocapture`.
const PINS: &[(&str, u64, u64, u64)] = &[
    (
        "alias_copy.c",
        0x610b11d6256812bc,
        0x610b11d6256812bc,
        0x610b11d6256812bc,
    ),
    (
        "circular_pair.c",
        0xcf588a6152852f46,
        0xcf588a6152852f46,
        0xcf588a6152852f46,
    ),
    (
        "cycle_break.c",
        0xf3ae1aadf3ad788f,
        0xf3ae1aadf3ad788f,
        0xf3ae1aadf3ad788f,
    ),
    (
        "dll_fig1.c",
        0x407c209a296e6e91,
        0xf65a3c059855258c,
        0xf65a3c059855258c,
    ),
    (
        "free_then_null.c",
        0xaf5e6cf4d30680f3,
        0xaf5e6cf4d30680f3,
        0xaf5e6cf4d30680f3,
    ),
    (
        "list_unshared.c",
        0x525865296a960f2b,
        0x11e84eae8c3be5dc,
        0x11e84eae8c3be5dc,
    ),
    (
        "loop_site.c",
        0x525865296a960f2b,
        0x11e84eae8c3be5dc,
        0x11e84eae8c3be5dc,
    ),
    (
        "reach_chain.c",
        0xf3ae1aadf3ad788f,
        0xf3ae1aadf3ad788f,
        0xf3ae1aadf3ad788f,
    ),
    (
        "shared_diamond.c",
        0x1ec24b4d39866563,
        0x1ec24b4d39866563,
        0x1ec24b4d39866563,
    ),
    (
        "swap_pointers.c",
        0x9390e8e52ae6a009,
        0x9390e8e52ae6a009,
        0x9390e8e52ae6a009,
    ),
    (
        "tree_leaves.c",
        0x6b217d147e19f7b2,
        0x6b217d147e19f7b2,
        0x6b217d147e19f7b2,
    ),
    (
        "wrong_alias.c",
        0x17dbf8230a0080d6,
        0x17dbf8230a0080d6,
        0x17dbf8230a0080d6,
    ),
];

#[test]
fn corpus_exit_signatures_are_bit_identical() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("c")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus is empty");

    let pins: std::collections::BTreeMap<&str, (u64, u64, u64)> = PINS
        .iter()
        .map(|&(name, a, b, c)| (name, (a, b, c)))
        .collect();

    let mut failures = Vec::new();
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path).unwrap();
        let got = (
            exit_signature_hash(&src, Level::L1),
            exit_signature_hash(&src, Level::L2),
            exit_signature_hash(&src, Level::L3),
        );
        match pins.get(name.as_str()) {
            Some(&want) if want == got => {}
            other => {
                println!(
                    "    (\"{name}\", 0x{:016x}, 0x{:016x}, 0x{:016x}),",
                    got.0, got.1, got.2
                );
                failures.push(match other {
                    None => format!("{name}: no pin (add the line above)"),
                    Some(&(a, b, c)) => format!(
                        "{name}: signature drifted \
                         (pinned 0x{a:016x}/0x{b:016x}/0x{c:016x})"
                    ),
                });
            }
        }
    }
    assert!(
        failures.is_empty(),
        "exit canonical signatures changed:\n{}",
        failures.join("\n")
    );
}
