//! Corpus canonical-byte pinning (ISSUE 7 satellite).
//!
//! The arena/sharding/batched-canon rework must not change a single
//! analysis outcome: this suite replays every program under
//! `tests/corpus/` at L1/L2/L3 and pins an FNV-1a hash of the exit
//! RSRSG's full canonical signature (the sorted canonical byte strings
//! of every member graph). The pins were generated on the pre-arena
//! `Vec<Option<Node>>` layout, so a green run is a machine-checked
//! bit-identity proof that the data-oriented storage rewrite preserved
//! both verdicts (see `corpus_replay.rs`) and canonical bytes.
//!
//! If a pin fails after an *intentional* encoding or semantics change,
//! regenerate with `cargo test --test corpus_canon -- --nocapture`
//! (each failure prints the fresh hash) and note the break in DESIGN.md.

use psa::core::api::{analyze_source, AnalysisOptions};
use psa::rsg::Level;
use std::path::PathBuf;

/// FNV-1a, 64-bit — matches `golden_canon.rs`.
fn fnv64(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn exit_signature_hash(src: &str, level: Level) -> u64 {
    let opts = AnalysisOptions {
        level: Some(level),
        ..AnalysisOptions::default()
    };
    let res = analyze_source(src, opts).expect("corpus program analyzes");
    assert!(
        res.stopped.is_none(),
        "corpus programs must run to fixpoint"
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in res.exit.signature() {
        fnv64(&mut h, &bytes);
        // Separator so concatenation ambiguity can't alias two sets.
        fnv64(&mut h, &[0xFF, 0x00]);
    }
    h
}

/// `(file, L1 hash, L2 hash, L3 hash)` — regenerate with `--nocapture`.
const PINS: &[(&str, u64, u64, u64)] = &[
    (
        "alias_copy.c",
        0x91a2939e5ca14b9b,
        0x91a2939e5ca14b9b,
        0x91a2939e5ca14b9b,
    ),
    (
        "circular_pair.c",
        0xa2d7b1d090a50df4,
        0xa2d7b1d090a50df4,
        0xa2d7b1d090a50df4,
    ),
    (
        "cycle_break.c",
        0x1265469da3aa3675,
        0x1265469da3aa3675,
        0x1265469da3aa3675,
    ),
    (
        "dll_fig1.c",
        0x6f2f1792678362bb,
        0x8c41185c641dfbae,
        0x8c41185c641dfbae,
    ),
    (
        "free_then_null.c",
        0x7fa9bdcc02f858b1,
        0x7fa9bdcc02f858b1,
        0x7fa9bdcc02f858b1,
    ),
    (
        "list_unshared.c",
        0x050b630e55e40657,
        0x8367a16158190a10,
        0x8367a16158190a10,
    ),
    (
        "loop_site.c",
        0x050b630e55e40657,
        0x8367a16158190a10,
        0x8367a16158190a10,
    ),
    (
        "reach_chain.c",
        0x1265469da3aa3675,
        0x1265469da3aa3675,
        0x1265469da3aa3675,
    ),
    (
        "shared_diamond.c",
        0xf781f01a10275efe,
        0xf781f01a10275efe,
        0xf781f01a10275efe,
    ),
    (
        "swap_pointers.c",
        0xd1bc78e79e2e93d6,
        0xd1bc78e79e2e93d6,
        0xd1bc78e79e2e93d6,
    ),
    (
        "tree_leaves.c",
        0xbb4862b03a263e43,
        0xbb4862b03a263e43,
        0xbb4862b03a263e43,
    ),
    (
        "wrong_alias.c",
        0x10fb35989cb59bc4,
        0x10fb35989cb59bc4,
        0x10fb35989cb59bc4,
    ),
];

#[test]
fn corpus_exit_signatures_are_bit_identical() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("c")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus is empty");

    let pins: std::collections::BTreeMap<&str, (u64, u64, u64)> = PINS
        .iter()
        .map(|&(name, a, b, c)| (name, (a, b, c)))
        .collect();

    let mut failures = Vec::new();
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path).unwrap();
        let got = (
            exit_signature_hash(&src, Level::L1),
            exit_signature_hash(&src, Level::L2),
            exit_signature_hash(&src, Level::L3),
        );
        match pins.get(name.as_str()) {
            Some(&want) if want == got => {}
            other => {
                println!(
                    "    (\"{name}\", 0x{:016x}, 0x{:016x}, 0x{:016x}),",
                    got.0, got.1, got.2
                );
                failures.push(match other {
                    None => format!("{name}: no pin (add the line above)"),
                    Some(&(a, b, c)) => format!(
                        "{name}: signature drifted \
                         (pinned 0x{a:016x}/0x{b:016x}/0x{c:016x})"
                    ),
                });
            }
        }
    }
    assert!(
        failures.is_empty(),
        "exit canonical signatures changed:\n{}",
        failures.join("\n")
    );
}
