//! Budget-exhaustion behaviour end to end: every cap trips individually,
//! degraded output stays sound, cancellation leaves no poisoned shared
//! state, and — crucially — an *unset* budget is perfectly inert (results
//! bit-identical to an unbudgeted run on the paper codes).

use psa::codes::{barnes_hut, sparse_lu, sparse_matvec, table1_codes, Sizes};
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::engine::{AnalysisError, BudgetKind, Engine, EngineConfig};
use psa::core::stats::Budget;
use psa::rsg::Level;
use std::time::Duration;

fn analyzer_with_budget(src: &str, budget: Budget) -> Analyzer {
    Analyzer::new(
        src,
        AnalysisOptions {
            budget,
            ..AnalysisOptions::default()
        },
    )
    .expect("paper code lowers")
}

/// With no degradation cap set, the budget layer must not perturb the
/// analysis: exit and per-statement RSRSGs are identical to a plain run on
/// every paper code.
#[test]
fn unset_budgets_are_bit_identical_on_paper_codes() {
    for (name, src) in table1_codes(Sizes::default()) {
        let plain = Analyzer::new(&src, AnalysisOptions::default())
            .expect("lowers")
            .run_at(Level::L1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let huge = Budget {
            max_nodes: Some(1 << 20),
            max_rsgs: Some(1 << 20),
            max_table_bytes: Some(1 << 40),
            deadline: Some(Duration::from_secs(3600)),
            ..Budget::default()
        };
        let capped = analyzer_with_budget(&src, huge)
            .run_at(Level::L1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(capped.is_complete(), "{name}");
        assert!(!capped.any_degraded(), "{name}");
        assert!(plain.exit.same_as(&capped.exit), "{name}: exit differs");
        for (i, (a, b)) in plain.after_stmt.iter().zip(&capped.after_stmt).enumerate() {
            assert!(a.same_as(b), "{name}: after_stmt[{i}] differs");
        }
    }
}

/// Barnes-Hut at L3 under a low node cap: the run completes (no panic, no
/// cancellation), the affected statements are marked degraded, and every
/// retained RSG either respects the cap or sits at the sound k-limiting
/// floor — pvar-pointed singletons (the singularity invariant forbids
/// merging them) plus at most one summary per struct type.
#[test]
fn barnes_hut_l3_completes_under_node_cap() {
    const CAP: usize = 6;
    let budget = Budget {
        max_nodes: Some(CAP),
        ..Budget::default()
    };
    let res = analyzer_with_budget(&barnes_hut(Sizes::default()), budget)
        .run_at(Level::L3)
        .expect("node cap degrades, never errors");
    assert!(res.is_complete(), "forced summarization must not cancel");
    assert!(
        res.any_degraded(),
        "a {CAP}-node cap must coarsen the octree"
    );
    assert!(!res.exit.is_empty());
    let mut over_cap_at_floor = 0usize;
    for (i, s) in res.after_stmt.iter().enumerate() {
        for g in s.iter() {
            if g.num_nodes() <= CAP {
                continue;
            }
            // Over the cap: no further sound merge may exist, i.e. all
            // non-pointed nodes carry pairwise-distinct struct types.
            over_cap_at_floor += 1;
            let pointed: std::collections::BTreeSet<_> = g.pl_iter().map(|(_, n)| n).collect();
            let mut seen_types = std::collections::BTreeSet::new();
            for n in g.node_ids() {
                if pointed.contains(&n) {
                    continue;
                }
                assert!(
                    seen_types.insert(g.node(n).ty),
                    "after_stmt[{i}]: an over-cap RSG ({} nodes, cap {CAP}) still \
                     holds two mergeable non-pointed nodes",
                    g.num_nodes()
                );
            }
        }
    }
    // The cap must have had teeth somewhere.
    assert!(
        res.degraded_stmts().count() > 0 || over_cap_at_floor > 0,
        "cap never tripped"
    );
}

/// Regression for the leak/memory clients' degradation discipline: under a
/// node cap that forces summarization on Barnes-Hut, no budget-degraded
/// statement may carry a dead-statement claim, a leak claim, or a `safe`
/// memory verdict — degraded state is sound but too coarse to certify
/// anything.
#[test]
fn node_capped_barnes_hut_withholds_claims_on_degraded_statements() {
    let budget = Budget {
        max_nodes: Some(6),
        ..Budget::default()
    };
    let a = analyzer_with_budget(&barnes_hut(Sizes::default()), budget);
    let res = a
        .run_at(Level::L3)
        .expect("node cap degrades, never errors");
    assert!(res.any_degraded(), "cap must bite for this regression test");

    let leaks = psa::core::leaks::leak_report(a.ir(), &res);
    assert!(leaks.inconclusive.is_none(), "completed run is conclusive");
    for sid in res.degraded_stmts() {
        assert!(
            !leaks.dead_statements.contains(&sid),
            "{sid}: dead claim on a degraded statement"
        );
        assert!(
            leaks.leaks.iter().all(|l| l.stmt != sid),
            "{sid}: leak claim on a degraded statement"
        );
        assert!(
            leaks.downgraded_statements.contains(&sid),
            "{sid}: degraded statement missing from the downgraded list"
        );
    }

    let mem = psa::core::memsafe::memory_report(a.ir(), &res);
    assert!(mem.inconclusive.is_none());
    for site in &mem.sites {
        if res.degraded[site.stmt.0 as usize] {
            assert!(site.degraded, "{}: degraded flag missing", site.stmt);
            assert_ne!(
                site.verdict,
                psa::core::memsafe::MemVerdict::Safe,
                "{}: `safe` claim on a degraded statement",
                site.stmt
            );
            assert_ne!(
                site.verdict,
                psa::core::memsafe::MemVerdict::Violation,
                "{}: `violation` claim on a degraded statement",
                site.stmt
            );
        }
    }
}

/// A budget-stopped (not merely degraded) run yields an inconclusive leak
/// report with zero claims — never-visited statements have empty RSRSGs
/// that mean "not analyzed", not "unreachable".
#[test]
fn stopped_run_leak_report_is_inconclusive_with_no_claims() {
    let budget = Budget {
        deadline: Some(Duration::ZERO),
        ..Budget::default()
    };
    let a = analyzer_with_budget(&barnes_hut(Sizes::default()), budget);
    let res = a.run_at(Level::L1).expect("deadline stops softly");
    assert!(res.stopped.is_some(), "zero deadline must stop the engine");
    let rep = psa::core::leaks::leak_report(a.ir(), &res);
    assert!(rep.inconclusive.is_some());
    assert!(rep.dead_statements.is_empty());
    assert!(rep.leaks.is_empty());
}

/// Differential check on the leak report's arithmetic: every reported
/// `max_nodes_dropped` must equal a direct recomputation from the
/// statement's fixed-point inputs (`AnalysisResult::input_at`), so the
/// report can never go stale against the engine's stored states.
#[test]
fn leak_drop_counts_match_direct_recomputation() {
    let src = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *list; struct node *p; int i;
            list = NULL;
            for (i = 0; i < 6; i++) {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                list = p;
            }
            p = NULL;
            list = NULL;
            return 0;
        }
    "#;
    let a = Analyzer::new(src, AnalysisOptions::default()).unwrap();
    let res = a.run_at(Level::L1).unwrap();
    let rep = psa::core::leaks::leak_report(a.ir(), &res);
    assert!(!rep.leaks.is_empty(), "the head drop must be reported");
    let ir = a.ir();
    for site in &rep.leaks {
        let (bid, pos) = ir
            .blocks
            .iter()
            .enumerate()
            .find_map(|(bi, b)| {
                b.stmts
                    .iter()
                    .position(|&s| s == site.stmt)
                    .map(|pos| (psa::ir::BlockId(bi as u32), pos))
            })
            .expect("leak site is in some block");
        let info = ir.stmt(site.stmt);
        let x = match info.stmt {
            psa::ir::Stmt::Ptr(psa::ir::PtrStmt::Nil(x))
            | psa::ir::Stmt::Ptr(psa::ir::PtrStmt::Malloc(x, _))
            | psa::ir::Stmt::Ptr(psa::ir::PtrStmt::Load(x, _, _))
            | psa::ir::Stmt::Ptr(psa::ir::PtrStmt::Copy(x, _)) => x,
            _ => panic!("leak site is not a rebind"),
        };
        let recomputed = res
            .input_at(ir, bid, pos)
            .iter()
            .map(|g| psa::core::leaks::nodes_dropped_in_graph(&info.stmt, g, x))
            .max()
            .unwrap_or(0);
        assert_eq!(
            site.max_nodes_dropped, recomputed,
            "{}: reported drop count diverges from recomputation",
            site.stmt
        );
    }
}

/// A 1 ms deadline on sparse LU yields a partial result, not an error and
/// not a panic.
#[test]
fn sparse_lu_millisecond_deadline_returns_partial() {
    let budget = Budget {
        deadline: Some(Duration::from_millis(1)),
        ..Budget::default()
    };
    let res = analyzer_with_budget(&sparse_lu(Sizes::default()), budget)
        .run_at(Level::L2)
        .expect("deadline is a soft cap");
    // The deadline fires somewhere inside the fixed point on any realistic
    // machine; if the box is impossibly fast the result is simply complete.
    if let Some(which) = res.stopped {
        assert!(matches!(which, BudgetKind::Deadline { limit_ms: 1 }));
        assert!(res.any_degraded(), "pending statements are marked");
    }
}

#[test]
fn rsg_cap_stops_matvec_softly() {
    let budget = Budget {
        max_rsgs: Some(1),
        ..Budget::default()
    };
    let res = analyzer_with_budget(&sparse_matvec(Sizes::default()), budget)
        .run_at(Level::L1)
        .expect("RSG cap is a soft cap");
    assert!(matches!(
        res.stopped,
        Some(BudgetKind::Rsgs { limit: 1, .. })
    ));
    assert!(res.any_degraded());
}

#[test]
fn table_bytes_cap_stops_softly() {
    let budget = Budget {
        max_table_bytes: Some(1),
        ..Budget::default()
    };
    let res = analyzer_with_budget(&sparse_matvec(Sizes::default()), budget)
        .run_at(Level::L1)
        .expect("table-bytes cap is a soft cap");
    assert!(matches!(
        res.stopped,
        Some(BudgetKind::TableBytes { limit: 1, .. })
    ));
}

/// The hard byte cap stays an error (Table 1's OOM semantics), now through
/// the typed taxonomy.
#[test]
fn hard_byte_cap_is_a_typed_error() {
    let budget = Budget {
        max_bytes: Some(1),
        ..Budget::default()
    };
    let err = analyzer_with_budget(&sparse_matvec(Sizes::default()), budget)
        .run_at(Level::L1)
        .expect_err("1 structural byte cannot hold an RSRSG");
    assert!(matches!(
        err,
        AnalysisError::BudgetExceeded {
            which: BudgetKind::Bytes { limit: 1, .. },
            ..
        }
    ));
}

/// Deadline cancellation leaves the shared tables usable: a fresh engine on
/// the same `ShapeCtx` (exactly what the progressive driver does) reaches
/// the full fixed point afterwards.
#[test]
fn deadline_cancellation_leaves_shared_state_clean() {
    let (program, table) = psa::cfront::parse_and_type(&sparse_matvec(Sizes::default())).unwrap();
    let program = psa::ir::inline_program(&program, "main").unwrap();
    let ir = psa::ir::lower_function(&program, &table, "main").unwrap();
    let cancelled_cfg = EngineConfig {
        budget: Budget {
            deadline: Some(Duration::ZERO),
            ..Budget::default()
        },
        ..EngineConfig::at_level(Level::L1)
    };
    let engine = Engine::new(&ir, cancelled_cfg);
    let partial = engine.run().unwrap();
    assert!(matches!(partial.stopped, Some(BudgetKind::Deadline { .. })));

    let full = Engine::with_shape_ctx(&ir, EngineConfig::at_level(Level::L1), engine.ctx().clone())
        .run()
        .unwrap();
    assert!(full.is_complete());
    assert!(!full.any_degraded());
    assert!(!full.exit.is_empty());
}
