//! Golden tests pinning the canonical byte encoding (ISSUE satellite).
//!
//! The interner keys storage, duplicate detection and the subsumption memo
//! on `canonical_bytes`, and the differential suites compare RSRSGs by
//! those bytes across engines. An accidental change to the encoding would
//! silently invalidate every persisted id and golden signature, so this
//! suite pins an FNV-1a hash of the encoding for a small fixed corpus. If
//! a test here fails after an *intentional* encoding change, regenerate the
//! constants with `cargo test --test golden_canon -- --nocapture` (each
//! failure prints the new hash) and mention the format break in DESIGN.md.

use psa::ir::PvarId;
use psa::rsg::canon::canonical_bytes;
use psa::rsg::{builder, Rsg};
use psa_cfront::types::SelectorId;

/// FNV-1a, 64-bit: stable, dependency-free, good enough to pin bytes.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn check(name: &str, g: &Rsg, expected: u64) {
    let bytes = canonical_bytes(g);
    let got = fnv64(&bytes);
    assert_eq!(
        got,
        expected,
        "{name}: canonical encoding changed \
         (got 0x{got:016x}, pinned 0x{expected:016x}, {} bytes)",
        bytes.len()
    );
}

const P0: PvarId = PvarId(0);
const NXT: SelectorId = SelectorId(0);
const PRV: SelectorId = SelectorId(1);

#[test]
fn golden_singly_linked_lists() {
    check(
        "sll(1)",
        &builder::singly_linked_list(1, 2, P0, NXT),
        0x0ca0ac7864d5c9ed,
    );
    check(
        "sll(2)",
        &builder::singly_linked_list(2, 2, P0, NXT),
        0x0d665156bda909d8,
    );
    check(
        "sll(3)",
        &builder::singly_linked_list(3, 2, P0, NXT),
        0x95f9e9e257836dc8,
    );
}

#[test]
fn golden_circular_list() {
    check(
        "circ(3)",
        &builder::circular_list(3, 2, P0, NXT),
        0x49df21c79b11c181,
    );
}

#[test]
fn golden_doubly_linked_list() {
    check(
        "dll(3)",
        &builder::doubly_linked_list(3, 2, P0, NXT, PRV),
        0xce74123c43bb2997,
    );
}

#[test]
fn golden_fig1_dll() {
    let (g, _) = builder::fig1_dll(P0, 3, NXT, PRV);
    check("fig1", &g, 0xa8ef15604611632f);
}

#[test]
fn golden_binary_tree() {
    check(
        "tree(2)",
        &builder::binary_tree(2, 2, P0, NXT, PRV),
        0x048fc78586524291,
    );
}

#[test]
fn golden_shared_hub() {
    // Two list heads converging on one shared hub node — exercises the
    // shared/touch encoding that plain lists do not.
    let mut g = builder::singly_linked_list(2, 3, P0, NXT);
    let hub = g.pl(P0).unwrap();
    let spoke = builder::singly_linked_list(2, 3, PvarId(1), NXT);
    let mut map = std::collections::BTreeMap::new();
    for n in spoke.node_ids() {
        map.insert(n, g.add_node(spoke.node(n).to_node()));
    }
    for (a, s, b) in spoke.links() {
        g.add_link(map[&a], s, map[&b]);
    }
    g.set_pl(PvarId(1), map[&spoke.pl(PvarId(1)).unwrap()]);
    // Point the tail of the second list at the first list's head.
    let tail = map[&spoke.node_ids().last().unwrap()];
    g.add_link(tail, NXT, hub);
    g.node_mut(tail).pos_selout.insert(NXT);
    g.node_mut(hub).pos_selin.insert(NXT);
    check("hub", &g, 0x1861de45347ba7c6);
}

#[test]
fn golden_empty_graph() {
    check("empty", &Rsg::empty(2), 0x61a576248d9a487d);
}

#[test]
fn encoding_depends_on_pvar_bindings() {
    // Sanity for the pins above: moving a pvar changes the bytes even when
    // the underlying store graph is identical.
    let a = builder::singly_linked_list(2, 2, P0, NXT);
    let mut b = a.clone();
    let head = b.pl(P0).unwrap();
    b.set_pl(PvarId(1), head);
    assert_ne!(fnv64(&canonical_bytes(&a)), fnv64(&canonical_bytes(&b)));
}
