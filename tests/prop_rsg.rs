//! Property-based tests (proptest) on the core shape-graph invariants.

use proptest::prelude::*;
use psa::ir::PvarId;
use psa::rsg::canon::{canonical_bytes, isomorphic};
use psa::rsg::compress::compress;
use psa::rsg::divide::divide;
use psa::rsg::join::{compatible, join};
use psa::rsg::prune::{prune, prune_with};
use psa::rsg::subsume::subsumes;
use psa::rsg::{builder, Level, Rsg, ShapeCtx};
use psa_cfront::types::{SelectorId, StructId};

/// A random but structurally valid RSG: a forest of lists and trees over one
/// struct with two selectors, with a few pvars.
fn arb_rsg() -> impl Strategy<Value = Rsg> {
    (
        2usize..6,     // list length
        0usize..3,     // tree depth
        any::<bool>(), // second pvar bound?
        any::<bool>(), // extra cross link?
    )
        .prop_map(|(len, depth, second, cross)| {
            let mut g = builder::singly_linked_list(len, 3, PvarId(0), SelectorId(0));
            if depth > 0 {
                // Attach a small tree under a second pvar.
                let t = builder::binary_tree(depth, 1, PvarId(0), SelectorId(0), SelectorId(1));
                // Splice tree nodes into g with fresh ids.
                let mut map = std::collections::BTreeMap::new();
                for n in t.node_ids() {
                    map.insert(n, g.add_node(t.node(n).to_node()));
                }
                for (a, s, b) in t.links() {
                    g.add_link(map[&a], s, map[&b]);
                }
                if second {
                    g.set_pl(PvarId(1), map[&t.pl(PvarId(0)).unwrap()]);
                }
            }
            if cross {
                // A benign extra possible link between the heads.
                let ids: Vec<_> = g.node_ids().collect();
                if ids.len() >= 2 {
                    let (a, b) = (ids[0], ids[ids.len() - 1]);
                    if g.node(a).ty == StructId(0) {
                        g.add_link(a, SelectorId(1), b);
                        g.node_mut(a).pos_selout.insert(SelectorId(1));
                        g.node_mut(b).pos_selin.insert(SelectorId(1));
                    }
                }
            }
            g.gc();
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_form_is_reconstruction_invariant(g in arb_rsg()) {
        // Rebuild the same graph with node ids permuted (reverse insertion).
        let ids: Vec<_> = g.node_ids().collect();
        let mut map = std::collections::BTreeMap::new();
        let mut h = Rsg::empty(g.num_pvar_slots());
        for &n in ids.iter().rev() {
            map.insert(n, h.add_node(g.node(n).to_node()));
        }
        for (a, s, b) in g.links() {
            h.add_link(map[&a], s, map[&b]);
        }
        for (p, n) in g.pl_iter() {
            h.set_pl(p, map[&n]);
        }
        prop_assert!(isomorphic(&g, &h));
        prop_assert_eq!(canonical_bytes(&g), canonical_bytes(&h));
    }

    #[test]
    fn compress_is_idempotent(g in arb_rsg()) {
        let ctx = ShapeCtx::synthetic(3, 2);
        for level in [Level::L1, Level::L2] {
            let c1 = compress(&g, &ctx, level);
            let c2 = compress(&c1, &ctx, level);
            prop_assert!(isomorphic(&c1, &c2), "compress must be idempotent at {}", level);
        }
    }

    #[test]
    fn compress_never_increases_size(g in arb_rsg()) {
        let ctx = ShapeCtx::synthetic(3, 2);
        let c = compress(&g, &ctx, Level::L1);
        prop_assert!(c.num_nodes() <= g.num_nodes());
    }

    #[test]
    fn compressed_graph_subsumes_original(g in arb_rsg()) {
        let ctx = ShapeCtx::synthetic(3, 2);
        let c = compress(&g, &ctx, Level::L1);
        prop_assert!(subsumes(&c, &g), "summarization only generalizes");
    }

    #[test]
    fn prune_is_idempotent(g in arb_rsg()) {
        if let Some(p1) = prune(&g) {
            let p2 = prune(&p1).expect("pruned graph stays consistent");
            prop_assert!(isomorphic(&p1, &p2));
        }
    }

    #[test]
    fn worklist_prune_matches_reference(g in arb_rsg(), muts in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u8..2), 0..6)) {
        // Inject property/link violations so the rules actually fire, then
        // require the seeded-worklist prune and the whole-graph rescan
        // reference to produce bit-identical results (same `Option`, same
        // node slots, same links, same properties).
        let mut g = g;
        for (kind, x, s) in muts {
            let ids: Vec<_> = g.node_ids().collect();
            if ids.is_empty() { break; }
            let n = ids[x as usize % ids.len()];
            let sel = SelectorId(u32::from(s));
            match kind % 4 {
                0 => g.node_mut(n).set_must_out(sel),
                1 => g.node_mut(n).set_must_in(sel),
                2 => {
                    if let Some(&(s2, b)) = g.out_links(n).first() {
                        g.remove_link(n, s2, b);
                    }
                }
                _ => {
                    g.node_mut(n).pos_selin.remove(sel);
                    g.node_mut(n).pos_selout.remove(sel);
                }
            }
        }
        let fast = prune_with(&g, false);
        let reference = prune_with(&g, true);
        prop_assert_eq!(fast, reference, "worklist PRUNE must be bit-identical to the rescan reference");
    }

    #[test]
    fn worklist_prune_matches_reference_after_divide(g in arb_rsg()) {
        // Division exercises the post-operation seeding (removed links,
        // promoted must-sets) that the synthetic mutations above do not.
        for reference in [false, true] {
            let parts = psa::rsg::divide::divide_with(&g, PvarId(0), SelectorId(0), reference);
            let other = psa::rsg::divide::divide_with(&g, PvarId(0), SelectorId(0), !reference);
            prop_assert_eq!(parts, other, "divide output must not depend on the prune path");
        }
    }

    #[test]
    fn join_subsumes_both_inputs(a in arb_rsg(), b in arb_rsg()) {
        let _ctx = ShapeCtx::synthetic(3, 2);
        if compatible(&a, &b, Level::L1) {
            let j = join(&a, &b, Level::L1);
            prop_assert!(subsumes(&j, &a), "join must cover its first input");
            prop_assert!(subsumes(&j, &b), "join must cover its second input");
        }
    }

    #[test]
    fn join_is_commutative_up_to_iso(a in arb_rsg(), b in arb_rsg()) {
        if compatible(&a, &b, Level::L1) {
            let ctx = ShapeCtx::synthetic(3, 2);
            let ab = compress(&join(&a, &b, Level::L1), &ctx, Level::L1);
            let ba = compress(&join(&b, &a, Level::L1), &ctx, Level::L1);
            // Both joins must subsume both inputs; exact isomorphism is not
            // guaranteed (greedy pairing), so check mutual subsumption of
            // the inputs instead.
            prop_assert!(subsumes(&ab, &a) && subsumes(&ab, &b));
            prop_assert!(subsumes(&ba, &a) && subsumes(&ba, &b));
        }
    }

    #[test]
    fn subsumption_is_reflexive(g in arb_rsg()) {
        prop_assert!(subsumes(&g, &g));
    }

    #[test]
    fn divide_parts_are_subsumed(g in arb_rsg()) {
        // Every divided part describes a subset of the original's
        // configurations... conversely each part must be subsumed by the
        // original graph (which may additionally describe others).
        let parts = divide(&g, PvarId(0), SelectorId(0));
        for part in &parts {
            prop_assert!(
                subsumes(&g, part),
                "division only specializes; part must embed into the input"
            );
        }
    }

    #[test]
    fn invariants_preserved_by_ops(g in arb_rsg()) {
        let ctx = ShapeCtx::synthetic(3, 2);
        compress(&g, &ctx, Level::L1).check_invariants(&ctx).unwrap();
        if let Some(p) = prune(&g) {
            p.check_invariants(&ctx).unwrap();
        }
        for part in divide(&g, PvarId(0), SelectorId(0)) {
            part.check_invariants(&ctx).unwrap();
        }
    }
}
