//! Differential validation of the memory-safety checker: every abstract
//! `safe` verdict must survive concrete execution. The pinned corpus under
//! `tests/corpus/` and a fixed-seed batch of generated programs are both
//! replayed through [`psa::concrete::validate_memory_report`], which runs
//! the interpreter and refutes any `safe` claim contradicted by an observed
//! null-deref / use-after-free / double-free fault or leak event.
//!
//! Per-verdict behaviour (one targeted program per check kind) is asserted
//! at the bottom — these are the soundness contracts DESIGN.md §14 states.

use psa::concrete::{validate_memory_report, InterpConfig};
use psa::core::engine::{Engine, EngineConfig};
use psa::core::memsafe::{memory_report, MemCheck, MemVerdict};
use psa::rsg::Level;
use std::path::PathBuf;

const SEEDS: &[u64] = &[1, 2, 3, 4];

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("c")).then_some(p)
        })
        .collect();
    files.sort();
    files
}

/// Parse, inline, lower, analyze at `level`, and differentially validate
/// the memory report. Panics with `ctx` on any refuted `safe` claim.
fn validate(src: &str, level: Level, ctx: &str) {
    let (p, t) = psa::cfront::parse_and_type(src).unwrap_or_else(|e| panic!("{ctx}: parse: {e}"));
    let p2 = psa::ir::inline_program(&p, "main").unwrap_or_else(|e| panic!("{ctx}: inline: {e}"));
    let ir = psa::ir::lower_main(&p2, &t).unwrap_or_else(|e| panic!("{ctx}: lower: {e}"));
    let result = Engine::new(&ir, EngineConfig::at_level(level))
        .run()
        .unwrap_or_else(|e| panic!("{ctx}: engine: {e}"));
    let abs = memory_report(&ir, &result);
    let diff = validate_memory_report(&ir, &abs, InterpConfig::default(), SEEDS);
    assert!(
        diff.is_validated(),
        "{ctx}: abstract `safe` claim refuted concretely: {:#?}",
        diff.mismatches
    );
}

#[test]
fn corpus_safe_verdicts_survive_concrete_execution() {
    for file in corpus_files() {
        let src = std::fs::read_to_string(&file).unwrap();
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        for level in Level::ALL {
            validate(&src, level, &format!("{name}/{level}"));
        }
    }
}

#[test]
fn fuzz_batch_safe_verdicts_survive_concrete_execution() {
    // A fixed-seed batch over the structured generators; the shapes cover
    // free-bearing random programs as well as the list/dll/tree mutators.
    for seed in 10..20u64 {
        let src = psa::codes::generators::random_program(seed, 28, 4);
        validate(&src, Level::L1, &format!("random/{seed}"));
    }
    for seed in 1..5u64 {
        let src = psa::codes::generators::dll_mutator_program(seed, 4);
        validate(&src, Level::L1, &format!("dll-mutator/{seed}"));
        let src = psa::codes::generators::tree_mutator_program(seed, 4);
        validate(&src, Level::L1, &format!("tree-mutator/{seed}"));
    }
}

/// Build a report for `src` at L1 and return the verdicts.
fn report(src: &str) -> (psa::ir::FuncIr, psa::core::memsafe::MemReport) {
    let (p, t) = psa::cfront::parse_and_type(src).unwrap();
    let ir = psa::ir::lower_main(&p, &t).unwrap();
    let result = Engine::new(&ir, EngineConfig::at_level(Level::L1))
        .run()
        .unwrap();
    let rep = memory_report(&ir, &result);
    (ir, rep)
}

const HEADER: &str = "struct node { int v; struct node *nxt; };\n";

#[test]
fn null_deref_verdicts_and_oracle_agree() {
    let src = format!("{HEADER}int main() {{ struct node *p; p = NULL; p->v = 1; return 0; }}");
    let (ir, rep) = report(&src);
    let viol = rep
        .sites
        .iter()
        .find(|s| s.check == MemCheck::NullDeref && s.verdict == MemVerdict::Violation);
    assert!(
        viol.is_some(),
        "definite null deref must be a violation:\n{rep}"
    );
    // A violation is not a `safe` claim — the oracle must still validate.
    let diff = validate_memory_report(&ir, &rep, InterpConfig::default(), SEEDS);
    assert!(diff.is_validated());
    assert!(diff.concrete_faults > 0, "interpreter observes the fault");
}

#[test]
fn use_after_free_verdicts_and_oracle_agree() {
    let src = format!(
        "{HEADER}int main() {{ struct node *p; \
         p = (struct node *) malloc(sizeof(struct node)); p->nxt = NULL; \
         free(p); p->v = 1; return 0; }}"
    );
    let (ir, rep) = report(&src);
    assert!(
        rep.sites
            .iter()
            .any(|s| s.check == MemCheck::UseAfterFree && s.verdict == MemVerdict::Violation),
        "deref of a definitely-freed pointer must be a violation:\n{rep}"
    );
    let diff = validate_memory_report(&ir, &rep, InterpConfig::default(), SEEDS);
    assert!(diff.is_validated());
    assert!(diff.concrete_faults > 0);
}

#[test]
fn double_free_verdicts_and_oracle_agree() {
    let src = format!(
        "{HEADER}int main() {{ struct node *p; \
         p = (struct node *) malloc(sizeof(struct node)); p->nxt = NULL; \
         free(p); free(p); return 0; }}"
    );
    let (ir, rep) = report(&src);
    assert!(
        rep.sites
            .iter()
            .any(|s| s.check == MemCheck::DoubleFree && s.verdict == MemVerdict::Violation),
        "second free of the same cell must be a violation:\n{rep}"
    );
    let diff = validate_memory_report(&ir, &rep, InterpConfig::default(), SEEDS);
    assert!(diff.is_validated());
    assert!(diff.concrete_faults > 0);
}

#[test]
fn leak_verdicts_and_oracle_agree() {
    // Dropping the only handle to a malloc'd cell is at most a may-fail —
    // the leak check never upgrades to `safe`/`violation` on live pointers,
    // and the concrete leak event must not refute anything.
    let src = format!(
        "{HEADER}int main() {{ struct node *p; \
         p = (struct node *) malloc(sizeof(struct node)); p->nxt = NULL; \
         p = NULL; return 0; }}"
    );
    let (ir, rep) = report(&src);
    let leak_sites: Vec<_> = rep
        .sites
        .iter()
        .filter(|s| s.check == MemCheck::Leak)
        .collect();
    assert!(
        leak_sites.iter().any(|s| s.verdict == MemVerdict::MayFail),
        "dropping the only handle must flag a may-leak:\n{rep}"
    );
    let diff = validate_memory_report(&ir, &rep, InterpConfig::default(), SEEDS);
    assert!(diff.is_validated());
    assert!(
        diff.concrete_leaks > 0,
        "interpreter observes the leak event"
    );
}
