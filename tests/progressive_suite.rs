//! The progressive driver (§5) across the whole benchmark suite: which
//! level each code/goal combination settles at, and that escalation is
//! exactly as lazy as the paper prescribes.

use psa::codes::{barnes_hut, sparse_lu, sparse_matmat, sparse_matvec, Sizes};
use psa::core::api::{AnalysisOptions, Analyzer};
use psa::core::progressive::Goal;
use psa::rsg::Level;

fn analyzer(src: &str) -> Analyzer {
    Analyzer::new(src, AnalysisOptions::progressive()).expect("lowers")
}

#[test]
fn sparse_codes_satisfied_at_l1() {
    // "The first three codes were successfully analyzed in the first level
    // of the compiler, L1."
    for (name, src, root) in [
        ("matvec", sparse_matvec(Sizes::default()), "A"),
        ("matmat", sparse_matmat(Sizes::default()), "C"),
        ("lu", sparse_lu(Sizes::default()), "M"),
    ] {
        let a = analyzer(&src);
        let pvar = a.ir().pvar_id(root).unwrap();
        let outcome = a.run_progressive(vec![Goal::NotSharedInRegion { pvar }]);
        assert_eq!(
            outcome.satisfied_at,
            Some(Level::L1),
            "{name} must not escalate beyond L1"
        );
        assert_eq!(
            outcome.levels.len(),
            1,
            "{name}: exactly one level attempted"
        );
    }
}

#[test]
fn barnes_hut_shsel_goal_satisfied_at_l1_here() {
    // The paper needed L2 for SHSEL(body) = false; our L1 maintenance is
    // stronger (EXPERIMENTS.md F3 discusses the deviation), so the driver
    // stops at L1 for this goal.
    let src = barnes_hut(Sizes::default());
    let a = analyzer(&src);
    let lbodies = a.ir().pvar_id("Lbodies").unwrap();
    let body = a.ir().types.selector_id("body").unwrap();
    let outcome = a.run_progressive(vec![Goal::NotShselInRegion {
        pvar: lbodies,
        sel: body,
    }]);
    assert!(outcome.satisfied_at.is_some());
    assert!(outcome.satisfied_at.unwrap() <= Level::L2);
}

#[test]
fn barnes_hut_parallel_goal_requires_l3() {
    let src = barnes_hut(Sizes::default());
    let a = analyzer(&src);
    let ir = a.ir();
    let b = ir.pvar_id("b").unwrap();
    let force_loop = (0..ir.loops.len())
        .rev()
        .map(|i| psa::ir::LoopId(i as u32))
        .find(|l| ir.loops[l.0 as usize].ipvars.contains(&b))
        .unwrap();
    let outcome = a.run_progressive(vec![Goal::LoopParallel {
        loop_id: force_loop,
    }]);
    assert_eq!(outcome.satisfied_at, Some(Level::L3));
    // All three levels were attempted, in order, each producing a result.
    assert_eq!(outcome.levels.len(), 3);
    for (lv, expect) in outcome.levels.iter().zip(Level::ALL) {
        assert_eq!(lv.level, expect);
        assert!(lv.result.is_ok());
    }
    // The goal evaluation history: unmet, unmet, met.
    assert_eq!(outcome.levels[0].goals_met, vec![false]);
    assert_eq!(outcome.levels[1].goals_met, vec![false]);
    assert_eq!(outcome.levels[2].goals_met, vec![true]);
}

#[test]
fn combined_goals_escalate_to_the_strictest() {
    let src = barnes_hut(Sizes::default());
    let a = analyzer(&src);
    let ir = a.ir();
    let lbodies = ir.pvar_id("Lbodies").unwrap();
    let body = ir.types.selector_id("body").unwrap();
    let b = ir.pvar_id("b").unwrap();
    let force_loop = (0..ir.loops.len())
        .rev()
        .map(|i| psa::ir::LoopId(i as u32))
        .find(|l| ir.loops[l.0 as usize].ipvars.contains(&b))
        .unwrap();
    let outcome = a.run_progressive(vec![
        Goal::NotShselInRegion {
            pvar: lbodies,
            sel: body,
        },
        Goal::LoopParallel {
            loop_id: force_loop,
        },
    ]);
    assert_eq!(
        outcome.satisfied_at,
        Some(Level::L3),
        "the parallel goal dominates"
    );
}

#[test]
fn no_alias_goal() {
    let src = sparse_matvec(Sizes::default());
    let a = analyzer(&src);
    let ir = a.ir();
    let x = ir.pvar_id("x").unwrap();
    let y = ir.pvar_id("y").unwrap();
    let outcome = a.run_progressive(vec![Goal::NoAlias { p: x, q: y }]);
    assert_eq!(
        outcome.satisfied_at,
        Some(Level::L1),
        "input and output vectors never alias"
    );
}

#[test]
fn best_result_is_most_precise_attempted() {
    let src = barnes_hut(Sizes::tiny());
    let a = analyzer(&src);
    let ir = a.ir();
    let b = ir.pvar_id("b").unwrap();
    let force_loop = (0..ir.loops.len())
        .rev()
        .map(|i| psa::ir::LoopId(i as u32))
        .find(|l| ir.loops[l.0 as usize].ipvars.contains(&b))
        .unwrap();
    let outcome = a.run_progressive(vec![Goal::LoopParallel {
        loop_id: force_loop,
    }]);
    let best = outcome.best().expect("some level produced a result");
    assert_eq!(best.level, Level::L3);
}
