//! Property-based tests for the canonical-form interner and the memoized
//! subsumption front-end (ISSUE satellite): interning must be a bijection
//! between canonical byte strings and ids, invariant under graph
//! renumbering, and the memo/pre-filter path must agree with the raw
//! backtracking search on every pair.

use proptest::prelude::*;
use psa::ir::PvarId;
use psa::rsg::canon::canonical_bytes;
use psa::rsg::compress::compress;
use psa::rsg::intern::{Fingerprint, SharedTables};
use psa::rsg::subsume::subsumes;
use psa::rsg::{builder, Level, Rsg, ShapeCtx};
use psa_cfront::types::{SelectorId, StructId};

/// Random structurally valid RSG: a list with an optional tree spliced in,
/// mirroring `tests/prop_rsg.rs`.
fn arb_rsg() -> impl Strategy<Value = Rsg> {
    (2usize..6, 0usize..3, any::<bool>()).prop_map(|(len, depth, second)| {
        let mut g = builder::singly_linked_list(len, 3, PvarId(0), SelectorId(0));
        if depth > 0 {
            let t = builder::binary_tree(depth, 1, PvarId(0), SelectorId(0), SelectorId(1));
            let mut map = std::collections::BTreeMap::new();
            for n in t.node_ids() {
                map.insert(n, g.add_node(t.node(n).to_node()));
            }
            for (a, s, b) in t.links() {
                g.add_link(map[&a], s, map[&b]);
            }
            if second {
                g.set_pl(PvarId(1), map[&t.pl(PvarId(0)).unwrap()]);
            }
        }
        g.gc();
        g
    })
}

/// The same graph rebuilt with node ids permuted (reverse insertion order).
fn renumbered(g: &Rsg) -> Rsg {
    let ids: Vec<_> = g.node_ids().collect();
    let mut map = std::collections::BTreeMap::new();
    let mut h = Rsg::empty(g.num_pvar_slots());
    for &n in ids.iter().rev() {
        map.insert(n, h.add_node(g.node(n).to_node()));
    }
    for (a, s, b) in g.links() {
        h.add_link(map[&a], s, map[&b]);
    }
    for (p, n) in g.pl_iter() {
        h.set_pl(p, map[&n]);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intern_roundtrips_canonical_bytes(g in arb_rsg()) {
        let t = SharedTables::new();
        let e = t.interner.intern(&g, &t.metrics);
        prop_assert_eq!(&e.bytes[..], &canonical_bytes(&g)[..]);
        prop_assert_eq!(&t.interner.bytes(e.id)[..], &e.bytes[..]);
        prop_assert_eq!(t.interner.fingerprint(e.id), e.fp);
    }

    #[test]
    fn isomorphic_graphs_intern_to_the_same_id(g in arb_rsg()) {
        let t = SharedTables::new();
        let a = t.interner.intern(&g, &t.metrics);
        let b = t.interner.intern(&renumbered(&g), &t.metrics);
        prop_assert_eq!(a.id, b.id);
        prop_assert_eq!(a.fp, b.fp);
        prop_assert_eq!(t.interner.len(), 1);
        let s = t.snapshot();
        prop_assert_eq!(s.intern_misses, 1);
        prop_assert_eq!(s.intern_hits, 1);
    }

    #[test]
    fn distinct_canonical_forms_get_distinct_ids(a in arb_rsg(), b in arb_rsg()) {
        let t = SharedTables::new();
        let ea = t.interner.intern(&a, &t.metrics);
        let eb = t.interner.intern(&b, &t.metrics);
        prop_assert_eq!(ea.id == eb.id, ea.bytes == eb.bytes);
        prop_assert!(t.interner.len() <= 2);
    }

    #[test]
    fn fingerprint_is_a_sound_prefilter(a in arb_rsg(), b in arb_rsg()) {
        // The pre-filter may only reject pairs the raw search also rejects:
        // subsumes(a, b) must imply may_subsume(fp(a), fp(b)).
        let (fa, fb) = (Fingerprint::of(&a), Fingerprint::of(&b));
        if subsumes(&a, &b) {
            prop_assert!(Fingerprint::may_subsume(&fa, &fb));
        }
        if subsumes(&b, &a) {
            prop_assert!(Fingerprint::may_subsume(&fb, &fa));
        }
    }

    #[test]
    fn memoized_path_agrees_with_raw_search(a in arb_rsg(), b in arb_rsg()) {
        let ctx = ShapeCtx::synthetic(3, 2);
        let (a, b) = (compress(&a, &ctx, Level::L1), compress(&b, &ctx, Level::L1));
        let t = SharedTables::new();
        let ea = t.interner.intern(&a, &t.metrics);
        let eb = t.interner.intern(&b, &t.metrics);
        let expect = subsumes(&a, &b);
        // First query computes (or pre-filter rejects), second must be served
        // without a fresh search; both agree with the reference.
        prop_assert_eq!(t.subsumes_interned((&ea, &a), (&eb, &b)), expect);
        let searches_after_first = t.snapshot().subsume_searches;
        prop_assert_eq!(t.subsumes_interned((&ea, &a), (&eb, &b)), expect);
        let s = t.snapshot();
        prop_assert_eq!(s.subsume_searches, searches_after_first);
        prop_assert_eq!(s.subsume_queries, 2);
        prop_assert!(s.subsume_cache_hits + s.subsume_prefilter_rejects >= 1);
    }

    #[test]
    fn self_subsumption_is_cached_true(g in arb_rsg()) {
        let ctx = ShapeCtx::synthetic(3, 2);
        let g = compress(&g, &ctx, Level::L1);
        let t = SharedTables::new();
        let e = t.interner.intern(&g, &t.metrics);
        prop_assert!(t.subsumes_interned((&e, &g), (&e, &g)));
        prop_assert_eq!(t.cache.lookup(e.id, e.id), Some(true));
        prop_assert!(t.subsumes_interned((&e, &g), (&e, &g)));
        prop_assert_eq!(t.snapshot().subsume_cache_hits, 1);
    }
}

#[test]
fn interner_is_shared_across_shape_ctx_clones() {
    let ctx = ShapeCtx::synthetic(3, 2);
    let clone = ctx.clone();
    let g = builder::singly_linked_list(3, 2, PvarId(0), SelectorId(0));
    let a = ctx.tables.interner.intern(&g, &ctx.tables.metrics);
    let b = clone.tables.interner.intern(&g, &clone.tables.metrics);
    assert_eq!(a.id, b.id);
    assert_eq!(ctx.tables.interner.len(), 1);
    assert_eq!(ctx.tables.snapshot().intern_hits, 1);
}

#[test]
fn fingerprint_distinguishes_node_types() {
    // Same shape, different struct type: dom hashes differ only via the
    // node-kind keys, and neither direction may pass as equal-domain.
    let a = builder::singly_linked_list(3, 2, PvarId(0), SelectorId(0));
    let mut b = a.clone();
    for n in b.node_ids().collect::<Vec<_>>() {
        *b.node_mut(n).ty = StructId(7);
    }
    assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
}
