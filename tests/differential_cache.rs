//! Differential regression suite for the subsumption cache (ISSUE
//! satellite): the memoized/pre-filtered subsumption path must be
//! *observationally identical* to the raw backtracking search. Random
//! programs are analyzed twice — cache on and cache off — and every
//! per-statement RSRSG must have bit-identical canonical signatures.
//!
//! Signatures are canonical bytes (content-compared `Arc<[u8]>`s), so the
//! comparison is independent of which interner minted them.

use psa::codes::generators::{dll_program, random_program};
use psa::core::engine::{Engine, EngineConfig};
use psa::ir::lower_main;
use psa::rsg::Level;

fn run_pair(src: &str, level: Level) {
    let (p, t) = psa::cfront::parse_and_type(src).expect("generated program parses");
    let ir = lower_main(&p, &t).expect("generated program lowers");
    let cached = Engine::new(
        &ir,
        EngineConfig {
            level,
            subsume_cache: true,
            ..Default::default()
        },
    )
    .run();
    let raw = Engine::new(
        &ir,
        EngineConfig {
            level,
            subsume_cache: false,
            ..Default::default()
        },
    )
    .run();
    match (cached, raw) {
        (Ok(c), Ok(r)) => {
            assert!(
                c.exit.same_as(&r.exit),
                "exit RSRSG diverged at {level}\nprogram:\n{src}"
            );
            for (i, (a, b)) in c.after_stmt.iter().zip(&r.after_stmt).enumerate() {
                assert_eq!(
                    a.signature(),
                    b.signature(),
                    "statement {i} RSRSG diverged at {level}\nprogram:\n{src}"
                );
            }
            for (a, b) in c.block_in.iter().zip(&r.block_in) {
                assert!(a.same_as(b), "block input diverged at {level}");
            }
            // The cached run must actually have exercised the cache paths
            // the raw run bypassed.
            assert_eq!(r.stats.ops.subsume_cache_hits, 0);
            assert_eq!(r.stats.ops.subsume_prefilter_rejects, 0);
            assert_eq!(
                c.stats.ops.subsume_queries, r.stats.ops.subsume_queries,
                "same fixed point must issue the same queries"
            );
        }
        (Err(ce), Err(re)) => assert_eq!(ce, re, "both runs must fail identically"),
        (c, r) => panic!(
            "cache-on and cache-off runs disagree on success: {:?} vs {:?}\nprogram:\n{src}",
            c.map(|_| ()),
            r.map(|_| ())
        ),
    }
}

#[test]
fn random_programs_identical_with_and_without_cache_l1() {
    for seed in 0u64..12 {
        let src = random_program(seed, 20, 4);
        run_pair(&src, Level::L1);
    }
}

#[test]
fn random_programs_identical_with_and_without_cache_l3() {
    for seed in 0u64..6 {
        let src = random_program(seed, 16, 3);
        run_pair(&src, Level::L3);
    }
}

#[test]
fn dll_identical_with_and_without_cache_all_levels() {
    let src = dll_program(8);
    for level in Level::ALL {
        run_pair(&src, level);
    }
}

#[test]
fn paper_codes_identical_with_and_without_cache() {
    let sizes = psa::codes::Sizes::tiny();
    for src in [
        psa::codes::sparse_matvec(sizes),
        psa::codes::sparse_lu(sizes),
        psa::codes::barnes_hut(sizes),
    ] {
        run_pair(&src, Level::L1);
    }
}

#[test]
fn cached_run_actually_hits_the_cache() {
    // A loopy program revisits blocks, so the same (general, specific)
    // canonical pairs recur and must be answered from the memo table.
    let src = dll_program(8);
    let (p, t) = psa::cfront::parse_and_type(&src).unwrap();
    let ir = lower_main(&p, &t).unwrap();
    let res = Engine::new(&ir, EngineConfig::at_level(Level::L1))
        .run()
        .unwrap();
    let ops = &res.stats.ops;
    assert!(ops.subsume_queries > 0);
    assert!(
        ops.subsume_cache_hits + ops.subsume_prefilter_rejects > 0,
        "fixed-point iteration must re-ask known pairs: {ops:?}"
    );
    assert!(
        ops.cache_hit_rate() > 0.5,
        "most queries should skip the search on a loopy program, got {:.2}",
        ops.cache_hit_rate()
    );
}
