//! Integration tests for the run-wide tracing subsystem: Chrome-trace
//! schema on the Fig. 1 doubly-linked list program, disabled-trace
//! bit-identity, parallel-run event-count invariants, and cancel-cause
//! attribution.

use psa::core::trace::{chrome_trace_json, summarize};
use psa::core::{AnalysisOptions, Analyzer, BudgetKind};
use psa::rsg::{CancelCause, Level, TraceKind};

fn dll_source() -> String {
    psa::codes::generators::dll_program(6)
}

fn options(trace: bool, parallel: bool) -> AnalysisOptions {
    AnalysisOptions {
        trace,
        parallel,
        ..AnalysisOptions::at_level(Level::L2)
    }
}

#[test]
fn chrome_trace_schema_on_fig1_dll() {
    let src = dll_source();
    let analyzer = Analyzer::new(&src, options(true, false)).unwrap();
    let res = analyzer.run().unwrap();
    let events = analyzer.trace_events();
    assert!(!events.is_empty(), "traced run must record events");

    // Every executed statement transfer has exactly one span.
    let stmt_spans = events
        .iter()
        .filter(|e| e.kind == TraceKind::StmtTransfer && e.dur_ns > 0)
        .count();
    assert_eq!(
        stmt_spans, res.stats.stmt_transfers,
        "one StmtTransfer span per executed transfer"
    );
    // One Run span per engine run, carrying the level ordinal.
    let runs: Vec<_> = events.iter().filter(|e| e.kind == TraceKind::Run).collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].arg, 2, "L2 run ordinal");
    // Worklist instants match the iteration counter.
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == TraceKind::WorklistIter)
            .count(),
        res.stats.iterations
    );

    // The export is well-formed Chrome trace JSON: a traceEvents array
    // whose complete events carry name/cat/ts/dur and whose instants
    // carry a scope, all round-trippable through the in-tree parser.
    let doc = chrome_trace_json(&events);
    let text = doc.pretty();
    let parsed = psa::core::json::Json::parse(&text).unwrap();
    let te = parsed.get("traceEvents").unwrap().as_array().unwrap();
    assert!(te.len() >= events.len());
    for e in te {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        assert!(e.get("name").unwrap().as_str().is_some());
        assert!(e.get("pid").is_some());
        assert!(e.get("tid").is_some());
        match ph {
            "X" => {
                assert!(e.get("ts").unwrap().as_f64().is_some());
                assert!(e.get("dur").unwrap().as_f64().unwrap() > 0.0);
            }
            "i" => {
                assert!(e.get("ts").unwrap().as_f64().is_some());
                assert_eq!(e.get("s").unwrap().as_str(), Some("t"));
            }
            _ => {}
        }
    }
}

#[test]
fn disabled_trace_changes_nothing() {
    let src = dll_source();
    let traced = Analyzer::new(&src, options(true, false)).unwrap();
    let plain = Analyzer::new(&src, options(false, false)).unwrap();
    let rt = traced.run().unwrap();
    let rp = plain.run().unwrap();

    // No journal without the option; a journal with it.
    assert!(plain.trace_events().is_empty());
    assert!(!traced.trace_events().is_empty());

    // Tracing must not perturb the analysis: identical exit sets,
    // identical per-statement sets, identical op counters.
    assert!(rt.exit.same_as(&rp.exit));
    for (a, b) in rt.after_stmt.iter().zip(&rp.after_stmt) {
        assert!(a.same_as(b));
    }
    assert_eq!(rt.stats.stmt_transfers, rp.stats.stmt_transfers);
    assert_eq!(rt.stats.iterations, rp.stats.iterations);
    assert_eq!(rt.stats.ops.join_calls, rp.stats.ops.join_calls);
    assert_eq!(rt.stats.ops.compress_calls, rp.stats.ops.compress_calls);
    assert_eq!(rt.stats.ops.intern_misses, rp.stats.ops.intern_misses);

    // The untraced report has no "trace" key at all (bit-identity with
    // pre-tracing output); the traced one gains it only when the caller
    // attaches a summary.
    let rep = psa::core::report::build_report(plain.ir(), &rp);
    let json = rep.to_json_string();
    assert!(!json.contains("\"trace\""));
    let mut rep_t = psa::core::report::build_report(traced.ir(), &rt);
    rep_t.trace = Some(summarize(&traced.trace_events(), Some(traced.ir())));
    assert!(rep_t.to_json_string().contains("\"trace\""));
}

#[test]
fn parallel_run_event_invariants() {
    let src = dll_source();
    let analyzer = Analyzer::new(&src, options(true, true)).unwrap();
    let res = analyzer.run().unwrap();
    let events = analyzer.trace_events();

    // The transfer-span invariant holds regardless of which worker
    // claimed each statement.
    let stmt_spans = events
        .iter()
        .filter(|e| e.kind == TraceKind::StmtTransfer)
        .count();
    assert_eq!(stmt_spans, res.stats.stmt_transfers);

    // Kernel spans recorded by workers carry their own track ids; the
    // journal stays time-sorted after the drain merge.
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    let summary = summarize(&events, Some(analyzer.ir()));
    assert!(summary.threads >= 1);
    assert_eq!(summary.events, events.len());
    // Per-statement latency covers every traced statement.
    let spanned: usize = summary.per_stmt.values().map(|s| s.count as usize).sum();
    assert_eq!(spanned, res.stats.stmt_transfers);
}

#[test]
fn progressive_trace_spans_all_levels() {
    let src = dll_source();
    let analyzer = Analyzer::new(
        &src,
        AnalysisOptions {
            trace: true,
            ..AnalysisOptions::progressive()
        },
    )
    .unwrap();
    let outcome = analyzer.run_progressive(vec![]);
    assert!(outcome.best().is_some());
    let events = analyzer.trace_events();
    let level_marks: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == TraceKind::LevelStart)
        .map(|e| e.arg)
        .collect();
    // No goals: L1 suffices, so exactly one level marker with ordinal 1,
    // and the run span agrees.
    assert_eq!(level_marks, vec![1]);
    let runs: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Run)
        .map(|e| e.arg)
        .collect();
    assert_eq!(runs, vec![1]);
}

#[test]
fn cancelled_run_records_the_cause() {
    let src = dll_source();
    let analyzer = Analyzer::new(
        &src,
        AnalysisOptions {
            trace: true,
            budget: psa::core::Budget {
                max_rsgs: Some(1),
                ..psa::core::Budget::default()
            },
            ..AnalysisOptions::at_level(Level::L1)
        },
    )
    .unwrap();
    let res = analyzer.run().unwrap();
    assert!(matches!(res.stopped, Some(BudgetKind::Rsgs { .. })));
    let events = analyzer.trace_events();
    let cancels: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Cancel)
        .collect();
    assert_eq!(cancels.len(), 1, "exactly one raise is journaled");
    assert_eq!(cancels[0].arg, CancelCause::Rsgs.code() as u64);
}
