//! The shape-assertion surface: comment scanning, parsing diagnostics,
//! resolution against the lowered IR, and end-to-end verdicts on the
//! paper's codes (Fig. 1 DLL sharing, Barnes-Hut octree non-sharing).

use proptest::prelude::*;
use psa::cfront::asserts::{extract_asserts, RawPred, ShapeName};
use psa::concrete::asserts::{check_asserts, Verdict};
use psa::rsg::Level;

// ---------------------------------------------------------------- parser

#[test]
fn good_syntax_all_forms() {
    let src = r#"
        // @assert shape(x, list)
        // @assert !shared(x->nxt)
        /* @assert reach(x, y) */
        // @assert !alias(p, q)
        // @assert acyclic(root); expect L1=may-fail, L3=holds
    "#;
    let raws = extract_asserts(src).unwrap();
    assert_eq!(raws.len(), 5);
    assert!(matches!(raws[0].pred, RawPred::Shape(_, ShapeName::List)));
    assert!(raws[1].negated && matches!(raws[1].pred, RawPred::Shared(_, _)));
    assert!(matches!(raws[2].pred, RawPred::Reach(_, _)));
    assert!(raws[3].negated && matches!(raws[3].pred, RawPred::Alias(_, _)));
    assert_eq!(raws[4].expect.len(), 2);
    assert_eq!(raws[4].expect[0].level, Some(1));
    assert_eq!(raws[1].render(), "!shared(x->nxt)");
}

#[test]
fn non_assert_comments_are_ignored() {
    let src = r#"
        // a normal comment mentioning shape(x, list)
        /* block comment */
        int main() { return 0; } // trailing
    "#;
    assert!(extract_asserts(src).unwrap().is_empty());
}

#[test]
fn assert_inside_string_literal_is_ignored() {
    let src = r#"char *s = "// @assert bogus("; // @assert acyclic(x)"#;
    let raws = extract_asserts(src).unwrap();
    assert_eq!(raws.len(), 1);
    assert_eq!(raws[0].render(), "acyclic(x)");
}

#[test]
fn bad_syntax_is_a_hard_error() {
    for bad in [
        "// @assert",
        "// @assert frobnicate(x)",
        "// @assert shape(x)",
        "// @assert shape(x, blob)",
        "// @assert alias(p q)",
        "// @assert shared(x.nxt)",
        "// @assert acyclic(x) trailing",
        "// @assert acyclic(x); expect L9=holds",
        "// @assert acyclic(x); expect maybe",
    ] {
        assert!(extract_asserts(bad).is_err(), "accepted: {bad}");
    }
}

// ------------------------------------------------------------ resolution

#[test]
fn unknown_pvar_and_selector_diagnostics() {
    let base = r#"
        struct node { int v; struct node *nxt; };
        int main() {
            struct node *p;
            p = NULL;
            {}
            return 0;
        }
    "#;
    let check = |comment: &str| {
        let src = base.replace("{}", comment);
        check_asserts(&src, Level::L1, &[1]).unwrap_err()
    };
    let e = check("// @assert acyclic(qq)");
    assert!(e.contains("unknown pointer variable `qq`"), "{e}");
    let e = check("// @assert !shared(p->prev)");
    assert!(e.contains("unknown selector `prev`"), "{e}");
}

// --------------------------------------------------- paper-code verdicts

/// Fig. 1's structure: a doubly-linked list. Every interior node carries two
/// in-references (pred's `nxt`, succ's `prv`) — shared in the plain sense —
/// but never two through the *same* selector, which is exactly what
/// `!shared(x->nxt)` asks and what SHSEL tracks.
#[test]
fn fig1_dll_sharing_verdicts() {
    let src = r#"
        struct node { int v; struct node *nxt; struct node *prv; };
        int main() {
            struct node *list; struct node *p; struct node *x; int i;
            /* Seed one node unconditionally: `alias` means "same heap
             * location", so both-NULL pvars do not alias. */
            list = (struct node *) malloc(sizeof(struct node));
            list->nxt = NULL;
            list->prv = NULL;
            for (i = 0; i < 8; i++) {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                p->prv = NULL;
                if (list != NULL) { list->prv = p; }
                list = p;
            }
            x = list;
            // @assert !shared(x->nxt)
            // @assert !shared(x->prv)
            // @assert alias(x, list)
            return 0;
        }
    "#;
    for level in Level::ALL {
        let rep = check_asserts(src, level, &[1, 2, 3, 4]).unwrap();
        assert!(
            rep.soundness_mismatches().is_empty(),
            "{level}: {:#?}",
            rep.outcomes
        );
        for o in &rep.outcomes {
            assert_ne!(
                o.verdict,
                Verdict::ConcreteViolation,
                "{level} {}",
                o.assertion.text
            );
        }
        // alias(x, list) is exact at every level.
        assert_eq!(rep.outcomes[2].verdict, Verdict::Holds, "{level}");
    }
}

/// Barnes-Hut (Fig. 3(a)): bodies are multiply referenced (list `nxt` +
/// leaf `body` pointers) but the octree's sibling chains are not shared
/// through `next`.
#[test]
fn barnes_hut_octree_non_sharing() {
    let src = psa::codes::barnes_hut(psa::codes::Sizes {
        n: 6,
        ..Default::default()
    });
    let src = src.replace(
        "    return 0;",
        "    // @assert !shared(root->child)\n    return 0;",
    );
    assert!(src.contains("@assert"), "insertion point moved");
    let rep = check_asserts(&src, Level::L2, &[1, 2]).unwrap();
    assert!(rep.soundness_mismatches().is_empty(), "{:#?}", rep.outcomes);
    // Never concretely refuted: each cell's child chain head has a single
    // `child` referrer.
    assert_ne!(rep.outcomes[0].verdict, Verdict::ConcreteViolation);
}

// ------------------------------------------------- generator round-trips

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the random generator emits, an assertion battery pasted at
    /// the end parses, resolves and evaluates without error at L1.
    #[test]
    fn generator_output_always_accepts_asserts(seed in 0u64..5_000) {
        let src = psa::codes::generators::random_program(seed, 14, 3);
        let src = src.replace(
            "    return 0;",
            "    // @assert acyclic(v0)\n    // @assert !alias(v0, v1)\n    return 0;",
        );
        prop_assert!(src.contains("@assert"));
        let rep = check_asserts(&src, Level::L1, &[seed]).unwrap();
        prop_assert_eq!(rep.outcomes.len(), 2);
        prop_assert!(rep.soundness_mismatches().is_empty());
    }

    /// The mutator generators parse/lower and stay sound under the
    /// differential harness.
    #[test]
    fn mutator_generators_sound_at_l1(seed in 0u64..2_000) {
        for src in [
            psa::codes::generators::dll_mutator_program(seed, 6),
            psa::codes::generators::tree_mutator_program(seed, 6),
        ] {
            let rep = psa::concrete::check_soundness(&src, Level::L1, &[seed]);
            prop_assert!(rep.is_sound(), "{:#?}\n{}", rep.violations, src);
        }
    }
}
