//! Op-level metrics tests (ISSUE satellite): the engine must account for
//! its own work — nonzero insert/subsume traffic on a real analysis, cache
//! reuse across progressive levels, and counter stability across identical
//! runs (timings excluded; they are wall-clock).

use psa::codes::generators::dll_program;
use psa::core::engine::{Engine, EngineConfig};
use psa::core::progressive::{Goal, ProgressiveRunner};
use psa::core::stats::OpStats;
use psa::ir::lower_main;
use psa::rsg::Level;

fn dll_ir() -> psa::ir::FuncIr {
    let (p, t) = psa::cfront::parse_and_type(&dll_program(8)).unwrap();
    lower_main(&p, &t).unwrap()
}

/// Copy with the wall-clock fields zeroed, for whole-struct comparison.
fn counters_only(ops: &OpStats) -> OpStats {
    OpStats {
        intern_ns: 0,
        subsume_ns: 0,
        join_ns: 0,
        compress_ns: 0,
        transfer_ns: 0,
        prune_ns: 0,
        divide_ns: 0,
        canon_ns: 0,
        ..*ops
    }
}

#[test]
fn dll_analysis_reports_nonzero_op_counts() {
    let ir = dll_ir();
    let res = Engine::new(&ir, EngineConfig::at_level(Level::L2))
        .run()
        .unwrap();
    let ops = &res.stats.ops;
    assert!(ops.insert_calls > 0, "{ops:?}");
    assert!(ops.subsume_queries > 0, "{ops:?}");
    assert!(
        ops.subsume_searches > 0,
        "a fresh run cannot answer everything from cache"
    );
    assert!(ops.compress_calls > 0, "{ops:?}");
    assert!(ops.union_calls > 0, "{ops:?}");
    assert!(ops.intern_misses > 0, "{ops:?}");
    assert!(ops.interner_size > 0, "{ops:?}");
    assert!(
        ops.interner_size <= ops.intern_misses,
        "every distinct form is one miss"
    );
    assert_eq!(
        ops.subsume_queries,
        ops.subsume_cache_hits + ops.subsume_prefilter_rejects + ops.subsume_searches,
        "every query is answered exactly one way: {ops:?}"
    );
    assert!(ops.peak_set_width > 0, "{ops:?}");
    assert!(ops.cache_hit_rate() >= 0.0 && ops.cache_hit_rate() <= 1.0);
}

#[test]
fn progressive_levels_share_the_cache() {
    // A DLL that survives to the exit: interior nodes carry both a `nxt`
    // and a `prv` incoming link, so they are genuinely SHARED at every
    // level, the goal is never met, and the runner escalates through all
    // three levels over one shared interner/memo table.
    const DLL_BUILD: &str = r#"
        struct node { int v; struct node *nxt; struct node *prv; };
        int main() {
            struct node *list; struct node *p; int i;
            list = NULL;
            for (i = 0; i < 8; i++) {
                p = (struct node *) malloc(sizeof(struct node));
                p->nxt = list;
                p->prv = NULL;
                if (list != NULL) { list->prv = p; }
                list = p;
            }
            return 0;
        }
    "#;
    let (prog, types) = psa::cfront::parse_and_type(DLL_BUILD).unwrap();
    let ir = lower_main(&prog, &types).unwrap();
    let list = ir.pvar_id("list").unwrap();
    let outcome = ProgressiveRunner::new(&ir, vec![Goal::NotSharedInRegion { pvar: list }]).run();
    assert_eq!(
        outcome.satisfied_at, None,
        "true sharing must defeat every level"
    );
    assert_eq!(outcome.levels.len(), 3);

    let l1 = outcome.levels[0].result.as_ref().unwrap();
    let l2 = outcome.levels[1].result.as_ref().unwrap();
    // `stats.ops` is the per-level delta. The second level starts with the
    // first level's canonical forms and verdicts already in the tables, so
    // it must re-hit them.
    assert!(l1.stats.ops.subsume_queries > 0);
    assert!(
        l2.stats.ops.cache_hit_rate() > 0.0,
        "L2 re-analysis must reuse cached subsumption work: {:?}",
        l2.stats.ops
    );
    assert!(
        l2.stats.ops.intern_hits > 0,
        "L2 must re-intern forms L1 already produced: {:?}",
        l2.stats.ops
    );
}

#[test]
fn identical_runs_report_identical_counters() {
    let ir = dll_ir();
    for level in Level::ALL {
        let a = Engine::new(&ir, EngineConfig::at_level(level))
            .run()
            .unwrap();
        let b = Engine::new(&ir, EngineConfig::at_level(level))
            .run()
            .unwrap();
        assert_eq!(
            counters_only(&a.stats.ops),
            counters_only(&b.stats.ops),
            "op counters must be deterministic at {level}"
        );
    }
}

#[test]
fn cache_off_run_still_counts_searches() {
    let ir = dll_ir();
    let cfg = EngineConfig {
        level: Level::L1,
        subsume_cache: false,
        ..Default::default()
    };
    let res = Engine::new(&ir, cfg).run().unwrap();
    let ops = &res.stats.ops;
    assert_eq!(ops.subsume_cache_hits, 0);
    assert_eq!(ops.subsume_prefilter_rejects, 0);
    assert_eq!(ops.subsume_queries, ops.subsume_searches);
    assert_eq!(ops.cache_size, 0, "the memo table must stay unused");
}
